// Package potential implements the potential-function machinery of the
// lower-bound proofs in Kupavskii–Welzl (PODC 2018) as executable,
// certificate-producing engines.
//
// The proofs of Theorem 3 (line, s-fold ±-covering) and Eq. (10) (ORC,
// q-fold covering) share one skeleton. Accumulate all robots' assigned
// intervals sorted by left endpoint; walk prefixes P, maintaining each
// robot's load L_r (sum of its processed turning points) and the frontier
// multiset A(P); and track a product potential f(P):
//
//	symmetric (Eq. 7):  f(P) = prod_r [ L_r^s / prod_{y in A} y ]
//	ORC       (Eq. 15): f(P) = prod_r [ L_r^(q-k) * b_r^k / prod_{y in A} y ]
//
// where b_r is the left endpoint of robot r's next unprocessed interval.
// Adding one interval multiplies f by mu*^s / (x^s (mu*-x)^k) (with
// s = q-k in the ORC form), which by Lemmas 4 and 5 is at least
//
//	delta = (k+s)^(k+s) / (s^s k^k mu^k)
//
// for every step — and delta > 1 exactly when mu = (lambda-1)/2 is below
// the critical mu(k+s, k). Since f(P) is also bounded (Eq. 8 / Case 1),
// a strategy claiming a competitive ratio below the bound runs into a
// contradiction after finitely many intervals. The engines replay this
// argument on concrete assignments and report the step where the
// contradiction materializes, yielding a machine-checkable refutation.
package potential

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/cover"
)

// Errors returned by the engines.
var (
	// ErrBadParams is returned for invalid engine parameters.
	ErrBadParams = errors.New("potential: invalid parameters")
	// ErrInvalidStep is returned when an assigned interval violates the
	// covering inequalities (Eq. 5) or the frontier invariant — evidence
	// that the claimed covering is not actually valid.
	ErrInvalidStep = errors.New("potential: assigned interval violates covering constraints")
	// ErrPrefixTooShort is returned when an engine cannot start because
	// some robot contributes no intervals.
	ErrPrefixTooShort = errors.New("potential: some robot has no assigned intervals in the prefix")
)

// Verdict classifies the outcome of running an engine over an assignment.
type Verdict int

const (
	// VerdictContradiction: f(P) exceeded its a-priori bound, refuting the
	// claimed competitive ratio (the paper's lower-bound conclusion).
	VerdictContradiction Verdict = iota + 1
	// VerdictExhausted: lambda is below the bound (delta > 1) and f(P)
	// grew monotonically, but the finite prefix ended before crossing the
	// bound; the certificate reports how many more steps are needed.
	VerdictExhausted
	// VerdictBounded: lambda is at or above the bound (delta <= 1); f(P)
	// stayed below its cap, as the theory predicts for valid ratios.
	VerdictBounded
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictContradiction:
		return "contradiction"
	case VerdictExhausted:
		return "exhausted"
	case VerdictBounded:
		return "bounded"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Step records one engine transition (one assigned interval).
type Step struct {
	// Index is the 0-based position in the processed sequence.
	Index int
	// Robot is the interval's robot.
	Robot int
	// A is the frontier value (min of A(P)) when the step was taken.
	A float64
	// B is the interval's right endpoint (the robot's new turning point).
	B float64
	// MuStar is the effective ratio (L_r + B)/reference <= mu.
	MuStar float64
	// X is the normalized load L_r/reference in (0, mu*).
	X float64
	// LogRatio is ln(f(P+)/f(P)).
	LogRatio float64
	// LogF is ln f(P+) after the step (NaN during warmup).
	LogF float64
}

// Certificate summarizes an engine run: the paper's lower-bound argument
// instantiated on one concrete covering attempt.
type Certificate struct {
	// Setting is "symmetric" or "orc".
	Setting string
	// K is the robot count; Fold is s (symmetric) or q (ORC).
	K, Fold int
	// Lambda is the claimed competitive ratio; Mu = (Lambda-1)/2.
	Lambda, Mu float64
	// MuCrit is the critical mu(k+s,k) (symmetric) or mu(q,k) (ORC).
	MuCrit float64
	// Delta is Lemma 5's guaranteed per-step growth factor.
	Delta float64
	// LogFBound is the a-priori cap on ln f(P).
	LogFBound float64
	// Steps is the number of intervals processed after warmup.
	Steps int
	// WarmupSteps is the number of intervals consumed before every robot
	// had positive load.
	WarmupSteps int
	// LogFStart and LogFEnd bracket the observed potential growth.
	LogFStart, LogFEnd float64
	// MinStepRatio is the minimum observed per-step growth factor after
	// warmup (>= Delta up to float tolerance, by Lemma 5).
	MinStepRatio float64
	// ContradictionStep is the post-warmup step index at which ln f(P)
	// first exceeded LogFBound, or -1.
	ContradictionStep int
	// Verdict classifies the run.
	Verdict Verdict
	// StepsNeeded estimates, for VerdictExhausted, how many further steps
	// would reach the contradiction at the guaranteed growth rate.
	StepsNeeded int
	// MaxSteps is the theorem's quantitative content when Delta > 1: no
	// valid covering can extend past this many post-warmup assigned
	// intervals, because f(P) grows by at least Delta per step while
	// capped at LogFBound. 0 when Delta <= 1 or the run never warmed up.
	MaxSteps int
	// GapDetail is non-empty when the refutation came from an outright
	// coverage gap (a point not covered in time), the most direct form of
	// contradiction.
	GapDetail string
	// Sub holds the certificate of the recursive (k-1, q-1) argument when
	// the ORC engine hit Case 2 of the proof.
	Sub *Certificate
}

// frontier is a min-heap multiset of frontier values with an incrementally
// maintained sum of logarithms.
type frontier struct {
	heap   floatMinHeap
	logSum float64
}

func newFrontier(n int) *frontier {
	f := &frontier{heap: make(floatMinHeap, n)}
	for i := range f.heap {
		f.heap[i] = 1
	}
	// log(1) = 0 for every initial element.
	return f
}

func (f *frontier) min() float64 { return f.heap[0] }

// replaceMin pops the minimum and inserts v, updating the log sum.
func (f *frontier) replaceMin(v float64) {
	f.logSum -= math.Log(f.heap[0])
	f.heap[0] = v
	f.logSum += math.Log(v)
	heap.Fix(&f.heap, 0)
}

type floatMinHeap []float64

func (h floatMinHeap) Len() int            { return len(h) }
func (h floatMinHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h floatMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatMinHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *floatMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// SymmetricEngine replays the Theorem 3 potential argument: k robots,
// s-fold ±-covering at ratio lambda.
type SymmetricEngine struct {
	k, s    int
	mu      float64
	loads   []float64
	logLoad []float64
	zeroCnt int
	front   *frontier
	steps   int
}

// NewSymmetricEngine validates parameters and returns a fresh engine.
// Requires 1 <= s <= k (the meaningful range of Theorem 3) and lambda > 1.
func NewSymmetricEngine(k, s int, lambda float64) (*SymmetricEngine, error) {
	if k < 1 || s < 1 || s > k {
		return nil, fmt.Errorf("%w: k=%d s=%d (need 1 <= s <= k)", ErrBadParams, k, s)
	}
	if !(lambda > 1) || math.IsNaN(lambda) {
		return nil, fmt.Errorf("%w: lambda=%g", ErrBadParams, lambda)
	}
	return &SymmetricEngine{
		k:       k,
		s:       s,
		mu:      (lambda - 1) / 2,
		loads:   make([]float64, k),
		logLoad: make([]float64, k),
		zeroCnt: k,
		front:   newFrontier(s),
	}, nil
}

// Bound returns the a-priori cap ln f(P) <= k*s*ln(mu) of Eq. (8).
func (e *SymmetricEngine) Bound() float64 {
	return float64(e.k*e.s) * math.Log(e.mu)
}

// LogF returns ln f(P) and whether it is defined (all loads positive).
func (e *SymmetricEngine) LogF() (float64, bool) {
	if e.zeroCnt > 0 {
		return math.NaN(), false
	}
	sumLoads := 0.0
	for _, l := range e.logLoad {
		sumLoads += l
	}
	return float64(e.s)*sumLoads - float64(e.k)*e.front.logSum, true
}

// Step processes one assigned interval. It checks the frontier invariant
// (the interval must begin at the current a(P)) and the covering inequality
// (Eq. 5), then updates loads and the frontier.
func (e *SymmetricEngine) Step(a cover.Assigned) (Step, error) {
	if a.Robot < 0 || a.Robot >= e.k {
		return Step{}, fmt.Errorf("%w: robot %d of %d", ErrBadParams, a.Robot, e.k)
	}
	front := e.front.min()
	const tol = 1e-9
	if math.Abs(a.TPrime-front) > tol*math.Max(1, front) {
		return Step{}, fmt.Errorf("%w: interval starts at %.12g but the frontier is %.12g",
			ErrInvalidStep, a.TPrime, front)
	}
	load := e.loads[a.Robot]
	// Eq. (5): b <= mu*a - L. Violation means the robot cannot actually
	// lambda-cover up to b in time.
	if a.Turn > e.mu*a.TPrime-load+tol*math.Max(1, e.mu*a.TPrime) {
		return Step{}, fmt.Errorf("%w: turn %.12g exceeds mu*t' - load = %.12g (robot %d)",
			ErrInvalidStep, a.Turn, e.mu*a.TPrime-load, a.Robot)
	}

	var (
		muStar   = (load + a.Turn) / a.TPrime
		x        = load / a.TPrime
		logRatio = math.Inf(1)
	)
	if load > 0 {
		logRatio = float64(e.s)*math.Log(muStar) -
			float64(e.s)*math.Log(x) -
			float64(e.k)*math.Log(muStar-x)
	}

	// Apply the update.
	if e.loads[a.Robot] == 0 {
		e.zeroCnt--
	}
	e.loads[a.Robot] += a.Turn
	e.logLoad[a.Robot] = math.Log(e.loads[a.Robot])
	e.front.replaceMin(a.Turn)
	e.steps++

	logF, _ := e.LogF()
	return Step{
		Index:    e.steps - 1,
		Robot:    a.Robot,
		A:        a.TPrime,
		B:        a.Turn,
		MuStar:   muStar,
		X:        x,
		LogRatio: logRatio,
		LogF:     logF,
	}, nil
}

// RunSymmetric replays the whole assignment through a symmetric engine and
// assembles the certificate. The assignment must be ordered by TPrime (as
// produced by cover.ExactAssignment with q = s).
func RunSymmetric(assigned []cover.Assigned, k, s int, lambda float64) (Certificate, error) {
	e, err := NewSymmetricEngine(k, s, lambda)
	if err != nil {
		return Certificate{}, err
	}
	muCrit, err := bounds.MuQK(float64(k+s), float64(k))
	if err != nil {
		return Certificate{}, fmt.Errorf("potential: %w", err)
	}
	delta, err := bounds.Lemma5Delta(e.mu, float64(s), float64(k))
	if err != nil {
		return Certificate{}, fmt.Errorf("potential: %w", err)
	}
	cert := Certificate{
		Setting:           "symmetric",
		K:                 k,
		Fold:              s,
		Lambda:            lambda,
		Mu:                e.mu,
		MuCrit:            muCrit,
		Delta:             delta,
		LogFBound:         e.Bound(),
		ContradictionStep: -1,
		MinStepRatio:      math.Inf(1),
	}
	seen := make(map[int]bool, k)
	for _, a := range assigned {
		st, err := e.Step(a)
		if err != nil {
			return cert, err
		}
		seen[a.Robot] = true
		logF, defined := e.LogF()
		if !defined {
			cert.WarmupSteps++
			continue
		}
		if cert.Steps == 0 {
			cert.LogFStart = logF
		}
		cert.Steps++
		cert.LogFEnd = logF
		if !math.IsInf(st.LogRatio, 1) {
			ratio := math.Exp(st.LogRatio)
			if ratio < cert.MinStepRatio {
				cert.MinStepRatio = ratio
			}
		}
		if cert.ContradictionStep < 0 && logF > cert.LogFBound {
			cert.ContradictionStep = cert.Steps - 1
		}
	}
	if len(seen) < k {
		return cert, fmt.Errorf("%w: %d of %d robots appeared", ErrPrefixTooShort, len(seen), k)
	}
	finalizeCertificate(&cert)
	return cert, nil
}

// finalizeCertificate derives the verdict and the step-budget estimates.
func finalizeCertificate(cert *Certificate) {
	if cert.Delta > 1 && cert.Steps > 0 {
		budget := cert.LogFBound - cert.LogFStart
		cert.MaxSteps = int(math.Ceil(budget / math.Log(cert.Delta)))
		if cert.MaxSteps < 0 {
			cert.MaxSteps = 0
		}
	}
	switch {
	case cert.ContradictionStep >= 0:
		cert.Verdict = VerdictContradiction
	case cert.Delta > 1:
		cert.Verdict = VerdictExhausted
		if cert.Steps > 0 {
			gap := cert.LogFBound - cert.LogFEnd
			cert.StepsNeeded = int(math.Ceil(gap/math.Log(cert.Delta))) + 1
			if cert.StepsNeeded < 0 {
				cert.StepsNeeded = 0
			}
		}
	default:
		cert.Verdict = VerdictBounded
	}
}

// RefuteSymmetricStrategy runs the whole Theorem 3 pipeline against a
// concrete collective line strategy: extract the lambda-covering intervals
// of each robot's turning sequence, build the exact-s assignment over
// (1, upTo], and replay the potential argument. A VerdictContradiction
// certificate is a machine-checked proof that THIS strategy does not s-fold
// ±-cover at ratio lambda; an ErrCoverageGap from the assignment phase is
// an even more direct refutation (a point is simply not covered in time),
// which is reported as a contradiction certificate with Steps = 0.
func RefuteSymmetricStrategy(turnsPerRobot [][]float64, s int, lambda, upTo float64) (Certificate, error) {
	k := len(turnsPerRobot)
	if k == 0 {
		return Certificate{}, fmt.Errorf("%w: no robots", ErrBadParams)
	}
	var all []cover.Interval
	for r, turns := range turnsPerRobot {
		ivs, err := cover.SymmetricCovIntervals(r, turns, lambda)
		if err != nil {
			return Certificate{}, fmt.Errorf("potential: robot %d: %w", r, err)
		}
		all = append(all, ivs...)
	}
	assigned, err := cover.ExactAssignment(all, s, upTo)
	if err != nil {
		if errors.Is(err, cover.ErrCoverageGap) {
			return gapCertificate("symmetric", k, s, lambda, err), nil
		}
		return Certificate{}, err
	}
	return RunSymmetric(assigned, k, s, lambda)
}

// gapCertificate builds the trivial refutation certificate for a strategy
// whose covering has an outright gap: a point is simply not covered often
// enough in time, so no potential argument is even needed.
func gapCertificate(setting string, k, fold int, lambda float64, cause error) Certificate {
	mu := (lambda - 1) / 2
	var muCrit float64
	if setting == "symmetric" {
		muCrit, _ = bounds.MuQK(float64(k+fold), float64(k))
	} else {
		muCrit, _ = bounds.MuQK(float64(fold), float64(k))
	}
	s := fold
	if setting == "orc" {
		s = fold - k
	}
	delta, derr := bounds.Lemma5Delta(mu, float64(s), float64(k))
	if derr != nil {
		delta = math.NaN()
	}
	return Certificate{
		Setting:           setting,
		K:                 k,
		Fold:              fold,
		Lambda:            lambda,
		Mu:                mu,
		MuCrit:            muCrit,
		Delta:             delta,
		Verdict:           VerdictContradiction,
		ContradictionStep: 0,
		GapDetail:         cause.Error(),
	}
}
