package contract

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/strategy"
)

// This file implements the hybrid-algorithm interpretation quoted in
// Section 3 (from Kao–Ma–Sipser–Yin): a single computer with k disjoint
// memory areas runs m basic algorithms; in the worst case only one of them
// solves the problem, after x units of computation. The hybrid runs basic
// algorithms in slices; a slice of algorithm i can resume from the depth
// stored in a memory area that still holds algorithm i's state, and must
// restart from zero otherwise.
//
// Serializing the paper's k-robot cyclic search strategy gives a natural
// hybrid: memory area r replays robot r's excursions in the global order
// of the parallel execution, and an excursion to depth d on ray i becomes
// a slice of algorithm i up to depth d. Because the cyclic strategy
// changes ray every excursion, slices effectively restart, and the
// serialized solve time just past depth alpha^n is the full geometric sum
// of all earlier slices: the slowdown of the exponential family is
//
//	alpha^m/(alpha - 1) + 1,
//
// which HybridSlowdown measures exactly and the tests pin against this
// closed form (ExpHybridSlowdown).

// slice is one serialized computation slice.
type slice struct {
	algorithm int     // ray index, 0-based here
	depth     float64 // run the algorithm (from its resume point) to depth
	cost      float64 // serialized cost of the slice
	start     float64 // serialized time at which the slice begins
}

// HybridResult reports the measured slowdown of a serialized hybrid.
type HybridResult struct {
	// Slowdown is sup over (algorithm, solve depth x) of serialized solve
	// time over x, within the horizon window.
	Slowdown float64
	// WorstAlgorithm and WorstDepth locate the supremum (right-limit).
	WorstAlgorithm int
	WorstDepth     float64
	// Slices is the number of serialized slices examined.
	Slices int
}

// HybridSlowdown serializes the k-robot m-ray cyclic exponential strategy
// (f = 0) into a hybrid algorithm with k memory areas and measures its
// exact slowdown over solve depths in [1, horizon).
func HybridSlowdown(m, k int, horizon float64) (HybridResult, error) {
	s, err := strategy.NewCyclicExponential(m, k, 0)
	if err != nil {
		return HybridResult{}, fmt.Errorf("contract: %w", err)
	}
	return hybridSlowdownOf(s, horizon)
}

// HybridSlowdownAlpha is HybridSlowdown with an explicit base.
func HybridSlowdownAlpha(m, k int, alpha, horizon float64) (HybridResult, error) {
	s, err := strategy.NewCyclicExponentialAlpha(m, k, 0, alpha)
	if err != nil {
		return HybridResult{}, fmt.Errorf("contract: %w", err)
	}
	return hybridSlowdownOf(s, horizon)
}

func hybridSlowdownOf(s *strategy.CyclicExponential, horizon float64) (HybridResult, error) {
	if !(horizon > 1) || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return HybridResult{}, fmt.Errorf("%w: horizon=%g", ErrBadParams, horizon)
	}
	m, k := s.M(), s.K()

	// Collect every robot's excursions tagged with the parallel start
	// time, then serialize in that order.
	type tagged struct {
		start float64
		ray   int
		depth float64
		robot int
	}
	var all []tagged
	for r := 0; r < k; r++ {
		rounds, err := s.Rounds(r, horizon)
		if err != nil {
			return HybridResult{}, fmt.Errorf("contract: %w", err)
		}
		t := 0.0
		for _, rd := range rounds {
			all = append(all, tagged{start: t, ray: rd.Ray - 1, depth: rd.Turn, robot: r})
			t += 2 * rd.Turn
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].start < all[j].start })

	// Memory areas: area r holds (algorithm, depth) of robot r's last
	// slice; a slice resumes only if its area still holds its algorithm.
	type memState struct {
		algorithm int
		depth     float64
	}
	areas := make([]memState, k)
	for i := range areas {
		areas[i] = memState{algorithm: -1}
	}
	var (
		slices []slice
		now    float64
	)
	for _, ex := range all {
		cost := ex.depth
		if areas[ex.robot].algorithm == ex.ray && areas[ex.robot].depth < ex.depth {
			cost = ex.depth - areas[ex.robot].depth
		}
		slices = append(slices, slice{
			algorithm: ex.ray,
			depth:     ex.depth,
			cost:      cost,
			start:     now,
		})
		now += cost
		areas[ex.robot] = memState{algorithm: ex.ray, depth: ex.depth}
	}

	// Worst case: the solving algorithm i needs depth x; the hybrid
	// solves at the serialized moment its first slice on i with depth >=
	// x passes x. For x just above a slice depth b the solver is the NEXT
	// deeper slice on i, so the supremum sits at right-limits of slice
	// depths (and at x = 1).
	maxDepth := make([]float64, m)
	type ref struct {
		depth  float64
		at     float64 // serialized time when the slice reaches `depth`...
		resume float64 // depth the slice resumed from
		start  float64
	}
	perAlg := make([][]ref, m)
	for _, sl := range slices {
		if sl.depth > maxDepth[sl.algorithm] {
			maxDepth[sl.algorithm] = sl.depth
			perAlg[sl.algorithm] = append(perAlg[sl.algorithm], ref{
				depth:  sl.depth,
				resume: sl.depth - sl.cost,
				start:  sl.start,
			})
		}
	}

	res := HybridResult{Slowdown: -1, Slices: len(slices)}
	solveTime := func(alg int, x float64, strict bool) (float64, bool) {
		refs := perAlg[alg]
		idx := sort.Search(len(refs), func(i int) bool {
			if strict {
				return refs[i].depth > x
			}
			return refs[i].depth >= x
		})
		if idx == len(refs) {
			return 0, false
		}
		r := refs[idx]
		// Within the slice, reaching x costs x - resume after start.
		from := r.resume
		if from > x {
			from = 0 // defensive: resumed beyond x cannot happen for first-reaching slices
		}
		return r.start + (x - from), true
	}
	for alg := 0; alg < m; alg++ {
		cands := map[float64]struct{}{1: {}}
		for _, r := range perAlg[alg] {
			if r.depth >= 1 && r.depth < horizon {
				cands[r.depth] = struct{}{}
			}
		}
		for b := range cands {
			if t, ok := solveTime(alg, b, false); ok {
				if ratio := t / b; ratio > res.Slowdown {
					res.Slowdown, res.WorstAlgorithm, res.WorstDepth = ratio, alg+1, b
				}
			} else {
				return HybridResult{}, fmt.Errorf("%w: algorithm %d at depth %g", ErrNoCompletion, alg+1, b)
			}
			if t, ok := solveTime(alg, b, true); ok {
				if ratio := t / b; ratio > res.Slowdown {
					res.Slowdown, res.WorstAlgorithm, res.WorstDepth = ratio, alg+1, b
				}
			}
		}
	}
	return res, nil
}

// ExpHybridSlowdown returns the closed-form slowdown of the serialized
// cyclic exponential hybrid with base alpha, for coprime m and k:
//
//	alpha^m / (alpha - 1) + 1,
//
// the value HybridSlowdown converges to from below as the window grows.
// With gcd(m,k) = 1 the excursion exponents {k*l + m*(r+1)} enumerate the
// integers exactly once, so the serialized prefix sums are the plain
// geometric series. For gcd(m,k) > 1 exponent classes repeat across robots
// and serialization tie-breaking enters the constant; no simple closed
// form holds, and the function reports ErrBadParams (use the measured
// HybridSlowdown instead).
func ExpHybridSlowdown(m, k int, alpha float64) (float64, error) {
	if m < 2 || k < 1 || !(alpha > 1) {
		return 0, fmt.Errorf("%w: m=%d k=%d alpha=%g", ErrBadParams, m, k, alpha)
	}
	if gcd(m, k) != 1 {
		return 0, fmt.Errorf("%w: closed form requires gcd(m,k) = 1, got m=%d k=%d", ErrBadParams, m, k)
	}
	return math.Pow(alpha, float64(m))/(alpha-1) + 1, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
