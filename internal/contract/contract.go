// Package contract implements the two application domains that Section 3
// of Kupavskii–Welzl (PODC 2018) connects to m-ray search:
//
//   - Contract algorithms (Bernstein–Finkelstein–Zilberstein, IJCAI 2003):
//     k processors run contracts (restartable computations of committed
//     length) on m problems; an interruption at time t with query problem
//     i must be answered with the longest contract on i completed by t.
//     The acceleration ratio is sup_{t,i} t / bestLength_i(t). Mapping a
//     contract of length d on problem i to "advance to distance d on ray
//     i" makes cyclic exponential schedules optimal, with
//
//     AR*(m,k) = min_alpha alpha^(m+k)/(alpha^k - 1) = mu(m+k, k)
//
//     via exactly the Lemma 4/5 algebra of the paper (the classical
//     (m+1)^(m+1)/m^m for one processor is the k = 1 case).
//
//   - Hybrid algorithms (Kao–Ma–Sipser–Yin): one computer with k memory
//     areas runs m basic algorithms, switching among them; progress not
//     held in a memory area restarts from scratch. Serializing the paper's
//     k-robot search strategy (one excursion at a time, each memory area
//     tracking one robot's latest algorithm) yields a hybrid whose
//     slowdown — serialized solve time over intrinsic solve depth — is
//     measured exactly here and matches alpha^m/(alpha-1) + 1 for the
//     exponential family.
//
// Both evaluators use the same right-limit breakpoint analysis as
// internal/adversary: worst cases sit just before completions.
package contract

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bounds"
)

// Errors returned by the schedulers.
var (
	// ErrBadParams is returned for invalid parameters.
	ErrBadParams = errors.New("contract: invalid parameters")
	// ErrNoCompletion is returned when some problem never completes a
	// contract within the generated schedule.
	ErrNoCompletion = errors.New("contract: a problem never completes a contract")
)

// Contract is one committed computation: run problem Problem for exactly
// Length time units (no intermediate results).
type Contract struct {
	Problem int
	Length  float64
}

// Schedule assigns contract sequences to processors.
type Schedule struct {
	m, k    int
	perProc [][]Contract
}

// M returns the number of problems.
func (s *Schedule) M() int { return s.m }

// K returns the number of processors.
func (s *Schedule) K() int { return s.k }

// ProcessorContracts returns processor p's contract sequence (copy).
func (s *Schedule) ProcessorContracts(p int) []Contract {
	return append([]Contract(nil), s.perProc[p]...)
}

// NewCyclicSchedule builds the interleaved exponential schedule: the
// global n-th contract (n from a small negative start for warmup) has
// length alpha^n, problem n mod m, and runs on processor n mod k.
// Contracts are generated until lengths exceed horizon * alpha^(m+k).
func NewCyclicSchedule(m, k int, alpha, horizon float64) (*Schedule, error) {
	if m < 2 || k < 1 {
		return nil, fmt.Errorf("%w: m=%d k=%d", ErrBadParams, m, k)
	}
	if !(alpha > 1) || math.IsInf(alpha, 0) || math.IsNaN(alpha) {
		return nil, fmt.Errorf("%w: alpha=%g", ErrBadParams, alpha)
	}
	if !(horizon > 1) || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return nil, fmt.Errorf("%w: horizon=%g", ErrBadParams, horizon)
	}
	s := &Schedule{m: m, k: k, perProc: make([][]Contract, k)}
	stop := math.Log(horizon)/math.Log(alpha) + float64(m+k)
	start := -2 * (m + k) // warmup: every problem completes tiny contracts early
	for n := start; float64(n) <= stop; n++ {
		problem := ((n % m) + m) % m
		proc := ((n % k) + k) % k
		s.perProc[proc] = append(s.perProc[proc], Contract{
			Problem: problem,
			Length:  math.Pow(alpha, float64(n)),
		})
	}
	return s, nil
}

// completion is a finished contract with its wall-clock completion time.
type completion struct {
	time    float64
	problem int
	length  float64
}

// completions lists all contract completions in global time order.
func (s *Schedule) completions() []completion {
	var all []completion
	for _, contracts := range s.perProc {
		t := 0.0
		for _, c := range contracts {
			t += c.Length
			all = append(all, completion{time: t, problem: c.Problem, length: c.Length})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].time < all[j].time })
	return all
}

// AccelerationRatio returns the exact acceleration ratio of the schedule
// within its generated window: the supremum over interruption times t and
// query problems i of t / bestLength_i(t), approached just before each
// completion. Early events before every problem has completed once are
// warmup and excluded (the standard convention); the final window edge is
// likewise excluded as a horizon artifact.
func (s *Schedule) AccelerationRatio() (float64, error) {
	events := s.completions()
	best := make([]float64, s.m)
	completedAll := 0
	worst := -1.0
	for _, ev := range events {
		if best[ev.problem] > 0 && completedAll == s.m {
			if ratio := ev.time / best[ev.problem]; ratio > worst {
				worst = ratio
			}
		}
		if best[ev.problem] == 0 {
			completedAll++
		}
		if ev.length > best[ev.problem] {
			best[ev.problem] = ev.length
		}
	}
	if completedAll < s.m {
		return 0, fmt.Errorf("%w: %d of %d problems completed", ErrNoCompletion, completedAll, s.m)
	}
	return worst, nil
}

// ARStar returns the optimal acceleration ratio mu(m+k, k) for m problems
// on k processors (cyclic schedules): the k = 1 case is the classical
// (m+1)^(m+1)/m^m.
func ARStar(m, k int) (float64, error) {
	if m < 2 || k < 1 {
		return 0, fmt.Errorf("%w: m=%d k=%d", ErrBadParams, m, k)
	}
	return bounds.MuQK(float64(m+k), float64(k))
}

// OptimalContractBase returns alpha* = ((m+k)/m)^(1/k), the minimizer of
// alpha^(m+k)/(alpha^k-1).
func OptimalContractBase(m, k int) (float64, error) {
	if m < 2 || k < 1 {
		return 0, fmt.Errorf("%w: m=%d k=%d", ErrBadParams, m, k)
	}
	return math.Pow(float64(m+k)/float64(m), 1/float64(k)), nil
}

// ExpScheduleAR returns the closed-form acceleration ratio
// alpha^(m+k)/(alpha^k-1) of the cyclic exponential schedule with base
// alpha (the quantity AccelerationRatio converges to from below as the
// window grows).
func ExpScheduleAR(m, k int, alpha float64) (float64, error) {
	if m < 2 || k < 1 || !(alpha > 1) {
		return 0, fmt.Errorf("%w: m=%d k=%d alpha=%g", ErrBadParams, m, k, alpha)
	}
	return math.Pow(alpha, float64(m+k)) / (math.Pow(alpha, float64(k)) - 1), nil
}
