package contract

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/numeric"
)

func TestNewCyclicScheduleValidation(t *testing.T) {
	if _, err := NewCyclicSchedule(1, 1, 2, 100); !errors.Is(err, ErrBadParams) {
		t.Error("m < 2 should fail")
	}
	if _, err := NewCyclicSchedule(3, 0, 2, 100); !errors.Is(err, ErrBadParams) {
		t.Error("k < 1 should fail")
	}
	if _, err := NewCyclicSchedule(3, 1, 1, 100); !errors.Is(err, ErrBadParams) {
		t.Error("alpha <= 1 should fail")
	}
	if _, err := NewCyclicSchedule(3, 1, 2, 0.5); !errors.Is(err, ErrBadParams) {
		t.Error("horizon <= 1 should fail")
	}
}

func TestScheduleAccessors(t *testing.T) {
	s, err := NewCyclicSchedule(3, 2, 1.4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 3 || s.K() != 2 {
		t.Error("M/K accessors wrong")
	}
	c0 := s.ProcessorContracts(0)
	if len(c0) == 0 {
		t.Fatal("processor 0 has no contracts")
	}
	c0[0].Length = -1
	if s.ProcessorContracts(0)[0].Length == -1 {
		t.Error("ProcessorContracts must return a copy")
	}
}

func TestARStarClassicSingleProcessor(t *testing.T) {
	// The classical contract-algorithm constant: (m+1)^(m+1)/m^m.
	for m := 2; m <= 6; m++ {
		got, err := ARStar(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(float64(m+1), float64(m+1)) / math.Pow(float64(m), float64(m))
		if !numeric.EqualWithin(got, want, 1e-12) {
			t.Errorf("ARStar(%d,1) = %.12g, want %.12g", m, got, want)
		}
	}
	if _, err := ARStar(1, 1); !errors.Is(err, ErrBadParams) {
		t.Error("m < 2 should fail")
	}
}

func TestOptimalContractBaseMinimizes(t *testing.T) {
	for _, c := range []struct{ m, k int }{{2, 1}, {4, 1}, {3, 2}, {5, 3}} {
		star, err := OptimalContractBase(c.m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		atStar, err := ExpScheduleAR(c.m, c.k, star)
		if err != nil {
			t.Fatal(err)
		}
		// The closed form at the optimal base equals ARStar.
		want, err := ARStar(c.m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(atStar, want, 1e-12) {
			t.Errorf("m=%d k=%d: AR at alpha* = %.12g, ARStar = %.12g", c.m, c.k, atStar, want)
		}
		// And nearby bases are worse.
		for _, d := range []float64{0.95, 1.05} {
			alpha := 1 + (star-1)*d
			v, err := ExpScheduleAR(c.m, c.k, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if v < atStar-1e-12 {
				t.Errorf("m=%d k=%d: base %g beats alpha*", c.m, c.k, alpha)
			}
		}
	}
	if _, err := OptimalContractBase(1, 1); !errors.Is(err, ErrBadParams) {
		t.Error("m < 2 should fail")
	}
}

func TestMeasuredARMatchesClosedForm(t *testing.T) {
	cases := []struct {
		m, k  int
		alpha float64
	}{
		{2, 1, 1.5}, {3, 1, 1.3}, {3, 2, 1.25}, {4, 2, 1.2},
	}
	for _, c := range cases {
		s, err := NewCyclicSchedule(c.m, c.k, c.alpha, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.AccelerationRatio()
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExpScheduleAR(c.m, c.k, c.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(got, want, 1e-3) {
			t.Errorf("m=%d k=%d alpha=%g: measured AR %.9g, closed form %.9g",
				c.m, c.k, c.alpha, got, want)
		}
		if got > want*(1+1e-9) {
			t.Errorf("m=%d k=%d: measured AR exceeds the asymptotic value", c.m, c.k)
		}
	}
}

func TestMeasuredAROptimalBaseBeatsDetuned(t *testing.T) {
	m, k := 3, 1
	star, err := OptimalContractBase(m, k)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewCyclicSchedule(m, k, star, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	arOpt, err := opt.AccelerationRatio()
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewCyclicSchedule(m, k, star*1.3, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	arDet, err := det.AccelerationRatio()
	if err != nil {
		t.Fatal(err)
	}
	if arOpt >= arDet {
		t.Errorf("optimal base AR %.6g should beat detuned %.6g", arOpt, arDet)
	}
}

func TestARStarIsMuOfMPlusK(t *testing.T) {
	// The bridge to the paper's kernel: AR*(m,k) = mu(m+k, k).
	for _, c := range []struct{ m, k int }{{2, 1}, {5, 2}, {7, 3}} {
		ar, err := ARStar(c.m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		mu, err := bounds.MuQK(float64(c.m+c.k), float64(c.k))
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(ar, mu, 1e-12) {
			t.Errorf("ARStar(%d,%d)=%.12g != mu(%d,%d)=%.12g", c.m, c.k, ar, c.m+c.k, c.k, mu)
		}
	}
}

func TestHybridSlowdownMatchesClosedForm(t *testing.T) {
	// Coprime (m, k) only: the closed form holds exactly there.
	cases := []struct{ m, k int }{{2, 1}, {3, 1}, {3, 2}, {4, 3}, {5, 2}}
	for _, c := range cases {
		res, err := HybridSlowdown(c.m, c.k, 1e5)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := bounds.OptimalAlpha(c.m, c.k) // the search strategy's base (f = 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExpHybridSlowdown(c.m, c.k, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(res.Slowdown, want, 1e-3) {
			t.Errorf("m=%d k=%d: measured slowdown %.9g, closed form %.9g",
				c.m, c.k, res.Slowdown, want)
		}
		if res.Slowdown > want*(1+1e-9) {
			t.Errorf("m=%d k=%d: measured slowdown exceeds asymptote", c.m, c.k)
		}
		if res.Slices == 0 {
			t.Error("no slices examined")
		}
	}
}

func TestHybridSlowdownAlphaValidation(t *testing.T) {
	if _, err := HybridSlowdownAlpha(3, 1, 1.0, 100); err == nil {
		t.Error("alpha <= 1 should fail")
	}
	if _, err := HybridSlowdown(3, 1, 0.5); err == nil {
		t.Error("horizon <= 1 should fail")
	}
	if _, err := HybridSlowdown(2, 5, 100); err == nil {
		t.Error("k >= m should fail (trivial regime)")
	}
}

func TestExpHybridSlowdownDomain(t *testing.T) {
	if _, err := ExpHybridSlowdown(4, 2, 1.3); !errors.Is(err, ErrBadParams) {
		t.Error("non-coprime (m,k) should be rejected (no simple closed form)")
	}
	if _, err := ExpHybridSlowdown(1, 1, 2); !errors.Is(err, ErrBadParams) {
		t.Error("m < 2 should fail")
	}
	got, err := ExpHybridSlowdown(3, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1.5, 3)/0.5 + 1
	if !numeric.EqualWithin(got, want, 1e-12) {
		t.Errorf("ExpHybridSlowdown(3,2,1.5) = %.12g, want %.12g", got, want)
	}
}

func TestHybridSlowdownNonCoprimeStable(t *testing.T) {
	// m=4, k=2 (gcd 2): no closed form, but the measured slowdown must be
	// finite, above the coprime-style value (repeated exponent classes
	// only add serialized work), and stable across growing horizons.
	a, err := HybridSlowdown(4, 2, 5e3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HybridSlowdown(4, 2, 5e4)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.EqualWithin(a.Slowdown, b.Slowdown, 1e-3) {
		t.Errorf("slowdown did not stabilize: %.9g vs %.9g", a.Slowdown, b.Slowdown)
	}
	alpha, err := bounds.OptimalAlpha(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	coprimeStyle := math.Pow(alpha, 4)/(alpha-1) + 1
	if b.Slowdown < coprimeStyle {
		t.Errorf("non-coprime slowdown %.9g below the coprime-style value %.9g", b.Slowdown, coprimeStyle)
	}
}

func TestQuickMeasuredARNeverExceedsClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		k := 1 + rng.Intn(2)
		alpha := 1.1 + rng.Float64()
		s, err := NewCyclicSchedule(m, k, alpha, 1e4)
		if err != nil {
			return false
		}
		got, err := s.AccelerationRatio()
		if err != nil {
			return false
		}
		want, err := ExpScheduleAR(m, k, alpha)
		if err != nil {
			return false
		}
		return got <= want*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
