// Package sim simulates collective search on the star S_m with crash-type
// faulty robots, the model of Theorem 1/Theorem 6 in Kupavskii–Welzl
// (PODC 2018).
//
// In the crash model a faulty robot moves exactly like a healthy one but
// stays silent when it passes the target. Healthy robots report the target
// the moment they reach it, and a report is trusted (crash-faulty robots
// never lie — that is the Byzantine model, handled by internal/byzantine).
// The adversary places the target and chooses which f robots are faulty
// after seeing the strategy; its optimal choice is to silence the first f
// distinct robots that would reach the target, so the detection time of a
// target at point p is the (f+1)-st smallest first-arrival time among the
// robots. The simulator computes exactly that, along with a full event
// timeline for inspection.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/strategy"
	"repro/internal/trajectory"
)

// Errors returned by the simulator.
var (
	// ErrBadConfig is returned for invalid simulation parameters.
	ErrBadConfig = errors.New("sim: invalid configuration")
	// ErrNotDetected is returned when the target is never confirmed within
	// the simulated horizon.
	ErrNotDetected = errors.New("sim: target not detected within horizon")
)

// EventKind labels timeline entries.
type EventKind int

const (
	// EventVisit: a robot passes the target location.
	EventVisit EventKind = iota + 1
	// EventReport: a healthy robot reports the target.
	EventReport
	// EventDetect: the target's position is confirmed (first healthy
	// report under the adversarial fault assignment).
	EventDetect
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventVisit:
		return "visit"
	case EventReport:
		return "report"
	case EventDetect:
		return "detect"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timeline entry.
type Event struct {
	Time   float64
	Kind   EventKind
	Robot  int
	Faulty bool
}

// Result summarizes one simulated search.
type Result struct {
	// Target is the simulated target location.
	Target trajectory.Point
	// DetectionTime is the confirmation time under the adversarial fault
	// assignment (+Inf if not detected within the horizon).
	DetectionTime float64
	// Ratio is DetectionTime / Target.Dist.
	Ratio float64
	// FaultySet lists the robots the adversary crashed (the first f
	// distinct visitors).
	FaultySet []int
	// Detector is the robot whose report confirmed the target.
	Detector int
	// Timeline holds all visit/report/detect events in time order.
	Timeline []Event
}

// Config describes a simulation run.
type Config struct {
	// Strategy is the collective search plan.
	Strategy strategy.Strategy
	// Faults is the number of crash-faulty robots the adversary controls.
	Faults int
	// Target is the hidden target (Dist >= 1 per the problem statement).
	Target trajectory.Point
	// HorizonFactor bounds the simulated time as a multiple of the
	// distance to the target (default 8 if zero): generating trajectories
	// far beyond the detection time is wasted work.
	HorizonFactor float64
}

// Run simulates the search and returns the adversarial-case result.
func Run(cfg Config) (Result, error) {
	if cfg.Strategy == nil {
		return Result{}, fmt.Errorf("%w: nil strategy", ErrBadConfig)
	}
	if cfg.Faults < 0 || cfg.Faults >= cfg.Strategy.K() {
		return Result{}, fmt.Errorf("%w: %d faults with %d robots", ErrBadConfig, cfg.Faults, cfg.Strategy.K())
	}
	if cfg.Target.Ray < 1 || cfg.Target.Ray > cfg.Strategy.M() {
		return Result{}, fmt.Errorf("%w: target ray %d of %d", ErrBadConfig, cfg.Target.Ray, cfg.Strategy.M())
	}
	if !(cfg.Target.Dist >= 1) || math.IsInf(cfg.Target.Dist, 0) {
		return Result{}, fmt.Errorf("%w: target distance %g (problem requires >= 1)", ErrBadConfig, cfg.Target.Dist)
	}
	hf := cfg.HorizonFactor
	if hf == 0 {
		hf = 8
	}
	if hf < 1 {
		return Result{}, fmt.Errorf("%w: horizon factor %g < 1", ErrBadConfig, hf)
	}

	trajs, err := strategy.Trajectories(cfg.Strategy, cfg.Target.Dist*hf)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}
	return runOnTrajectories(trajs, cfg.Faults, cfg.Target)
}

// firstArrival pairs a robot with its first arrival time at the target.
type firstArrival struct {
	robot int
	time  float64
}

func runOnTrajectories(trajs []*trajectory.Star, faults int, target trajectory.Point) (Result, error) {
	arrivals := make([]firstArrival, 0, len(trajs))
	for r, tr := range trajs {
		t := tr.FirstVisit(target)
		if !math.IsInf(t, 1) {
			arrivals = append(arrivals, firstArrival{robot: r, time: t})
		}
	}
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].time != arrivals[j].time {
			return arrivals[i].time < arrivals[j].time
		}
		return arrivals[i].robot < arrivals[j].robot
	})

	res := Result{
		Target:        target,
		DetectionTime: math.Inf(1),
		Ratio:         math.Inf(1),
		Detector:      -1,
	}
	// The adversary silences the first `faults` distinct visitors.
	for i, a := range arrivals {
		faulty := i < faults
		if faulty {
			res.FaultySet = append(res.FaultySet, a.robot)
		}
		res.Timeline = append(res.Timeline, Event{
			Time: a.time, Kind: EventVisit, Robot: a.robot, Faulty: faulty,
		})
		if !faulty && res.Detector < 0 {
			res.Detector = a.robot
			res.DetectionTime = a.time
			res.Ratio = a.time / target.Dist
			res.Timeline = append(res.Timeline,
				Event{Time: a.time, Kind: EventReport, Robot: a.robot},
				Event{Time: a.time, Kind: EventDetect, Robot: a.robot},
			)
			// Later visits are irrelevant to detection; keep the timeline
			// focused on the decisive prefix.
			break
		}
	}
	if res.Detector < 0 {
		return res, fmt.Errorf("%w: only %d robots reach %v", ErrNotDetected, len(arrivals), target)
	}
	return res, nil
}

// DetectionTime returns just the adversarial detection time for a target,
// given materialized trajectories: the (f+1)-st smallest first-arrival.
func DetectionTime(trajs []*trajectory.Star, target trajectory.Point, faults int) (float64, error) {
	if faults < 0 || faults >= len(trajs) {
		return 0, fmt.Errorf("%w: %d faults with %d robots", ErrBadConfig, faults, len(trajs))
	}
	res, err := runOnTrajectories(trajs, faults, target)
	if err != nil {
		return math.Inf(1), err
	}
	return res.DetectionTime, nil
}

// SweepRatio measures the worst observed competitive ratio over a set of
// target distances on every ray — a sampled (not exact) adversary, useful
// for quick sanity checks; internal/adversary computes the exact supremum.
func SweepRatio(s strategy.Strategy, faults int, dists []float64) (float64, error) {
	worst := 0.0
	for _, d := range dists {
		for ray := 1; ray <= s.M(); ray++ {
			res, err := Run(Config{Strategy: s, Faults: faults, Target: trajectory.Point{Ray: ray, Dist: d}})
			if err != nil {
				return 0, err
			}
			if res.Ratio > worst {
				worst = res.Ratio
			}
		}
	}
	return worst, nil
}
