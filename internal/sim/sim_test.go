package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/numeric"
	"repro/internal/strategy"
	"repro/internal/trajectory"
)

func TestRunValidation(t *testing.T) {
	s := strategy.Doubling()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil strategy", Config{}},
		{"too many faults", Config{Strategy: s, Faults: 1, Target: trajectory.Point{Ray: 1, Dist: 2}}},
		{"bad ray", Config{Strategy: s, Target: trajectory.Point{Ray: 3, Dist: 2}}},
		{"distance below 1", Config{Strategy: s, Target: trajectory.Point{Ray: 1, Dist: 0.5}}},
		{"horizon below 1", Config{Strategy: s, Target: trajectory.Point{Ray: 1, Dist: 2}, HorizonFactor: 0.5}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("expected ErrBadConfig, got %v", err)
			}
		})
	}
}

func TestEventKindString(t *testing.T) {
	if EventVisit.String() != "visit" || EventReport.String() != "report" || EventDetect.String() != "detect" {
		t.Error("EventKind.String misbehaves")
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestRunCowPathDetection(t *testing.T) {
	// Single healthy robot doubling: target at +3 on ray 1 is reached on
	// the excursion that first passes distance 3.
	s := strategy.Doubling()
	res, err := Run(Config{Strategy: s, Faults: 0, Target: trajectory.Point{Ray: 1, Dist: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detector != 0 {
		t.Errorf("detector = %d, want robot 0", res.Detector)
	}
	if res.Ratio > 9+1e-9 {
		t.Errorf("cow-path ratio %g exceeds 9 at a sampled point", res.Ratio)
	}
	if len(res.FaultySet) != 0 {
		t.Error("no faults requested, none should be assigned")
	}
	// Timeline sanity: visit then report then detect, same time.
	if len(res.Timeline) != 3 {
		t.Fatalf("timeline %v, want 3 events", res.Timeline)
	}
	if res.Timeline[0].Kind != EventVisit || res.Timeline[1].Kind != EventReport ||
		res.Timeline[2].Kind != EventDetect {
		t.Error("timeline order wrong")
	}
}

func TestRunAdversarySilencesFirstVisitors(t *testing.T) {
	// k=3, f=1 on the line: the first robot to arrive is crashed; the
	// detection happens at the second distinct arrival.
	s, err := strategy.NewCyclicExponential(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	target := trajectory.Point{Ray: 1, Dist: 7}
	res, err := Run(Config{Strategy: s, Faults: 1, Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultySet) != 1 {
		t.Fatalf("faulty set %v, want exactly 1 robot", res.FaultySet)
	}
	if res.FaultySet[0] == res.Detector {
		t.Error("the detector cannot be the crashed robot")
	}
	// Cross-check with the analytic (f+1)-st order statistic.
	trajs, err := strategy.Trajectories(s, target.Dist*8)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []float64
	for _, tr := range trajs {
		arrivals = append(arrivals, tr.FirstVisit(target))
	}
	sort.Float64s(arrivals)
	if !numeric.EqualWithin(res.DetectionTime, arrivals[1], 1e-9) {
		t.Errorf("detection %g, want second arrival %g", res.DetectionTime, arrivals[1])
	}
}

func TestRunRatioWithinLambda0(t *testing.T) {
	cases := []struct{ m, k, f int }{{2, 1, 0}, {2, 3, 1}, {3, 2, 0}, {3, 4, 1}}
	for _, c := range cases {
		s, err := strategy.NewCyclicExponential(c.m, c.k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		lambda0, err := bounds.AMKF(c.m, c.k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []float64{1, 2.3, 5, 17.9} {
			for ray := 1; ray <= c.m; ray++ {
				res, err := Run(Config{Strategy: s, Faults: c.f, Target: trajectory.Point{Ray: ray, Dist: d}})
				if err != nil {
					t.Fatal(err)
				}
				if res.Ratio > lambda0*(1+1e-9) {
					t.Errorf("m=%d k=%d f=%d target r%d:%g ratio %.9g > lambda0 %.9g",
						c.m, c.k, c.f, ray, d, res.Ratio, lambda0)
				}
			}
		}
	}
}

func TestDetectionTimeErrors(t *testing.T) {
	s := strategy.Doubling()
	trajs, err := strategy.Trajectories(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DetectionTime(trajs, trajectory.Point{Ray: 1, Dist: 2}, 1); !errors.Is(err, ErrBadConfig) {
		t.Error("faults >= robots should fail")
	}
	// Target beyond the trajectory horizon is undetectable.
	got, err := DetectionTime(trajs, trajectory.Point{Ray: 1, Dist: 1e6}, 0)
	if !errors.Is(err, ErrNotDetected) {
		t.Errorf("expected ErrNotDetected, got %v", err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("undetected time = %g, want +Inf", got)
	}
}

func TestSweepRatioMatchesRun(t *testing.T) {
	s, err := strategy.NewCyclicExponential(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	dists := []float64{1, 2, 4, 8}
	worst, err := SweepRatio(s, 1, dists)
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, d := range dists {
		for ray := 1; ray <= 2; ray++ {
			res, err := Run(Config{Strategy: s, Faults: 1, Target: trajectory.Point{Ray: ray, Dist: d}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ratio > max {
				max = res.Ratio
			}
		}
	}
	if !numeric.EqualWithin(worst, max, 1e-12) {
		t.Errorf("SweepRatio %g != max Run ratio %g", worst, max)
	}
}

func TestQuickMoreFaultsNeverDetectEarlier(t *testing.T) {
	// Property: with the same strategy and target, increasing the fault
	// budget never decreases the detection time.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(3) // 3..5 robots
		fmax := (k - 1) / 2
		s, err := strategy.NewCyclicExponential(2, k, fmax)
		if err != nil {
			return true // parameters out of regime; skip
		}
		d := 1 + rng.Float64()*20
		ray := 1 + rng.Intn(2)
		prev := 0.0
		for faults := 0; faults <= fmax; faults++ {
			res, err := Run(Config{Strategy: s, Faults: faults, Target: trajectory.Point{Ray: ray, Dist: d}})
			if err != nil {
				return false
			}
			if res.DetectionTime < prev-1e-9 {
				return false
			}
			prev = res.DetectionTime
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickDetectionIsOrderStatistic(t *testing.T) {
	// Property: detection time equals the (f+1)-st order statistic of the
	// robots' first arrivals, for random targets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := strategy.NewCyclicExponential(2, 3, 1)
		if err != nil {
			return false
		}
		d := 1 + rng.Float64()*30
		ray := 1 + rng.Intn(2)
		target := trajectory.Point{Ray: ray, Dist: d}
		res, err := Run(Config{Strategy: s, Faults: 1, Target: target})
		if err != nil {
			return false
		}
		trajs, err := strategy.Trajectories(s, d*8)
		if err != nil {
			return false
		}
		var arrivals []float64
		for _, tr := range trajs {
			arrivals = append(arrivals, tr.FirstVisit(target))
		}
		sort.Float64s(arrivals)
		return numeric.EqualWithin(res.DetectionTime, arrivals[1], 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
