package sim

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/bounds"
	"repro/internal/strategy"
	"repro/internal/trajectory"
)

// theorem1SearchCells enumerates the line-model (m = 2) search-regime
// cells up to kMax — the Theorem 1 grid the golden checks run on.
func theorem1SearchCells(kMax int) [][2]int {
	var out [][2]int
	for k := 1; k <= kMax; k++ {
		for f := 0; f < k; f++ {
			if regime, err := bounds.Classify(2, k, f); err == nil && regime == bounds.RegimeSearch {
				out = append(out, [2]int{k, f})
			}
		}
	}
	return out
}

// TestGoldenTheorem1DetectionTimes cross-validates the event simulator
// against the analytic adversary on the Theorem 1 grid: at the
// adversary's located worst point (approached from above), the
// simulated detection ratio must reproduce the analytically computed
// supremum, and every simulated ratio must respect the closed-form
// bound A(k, f).
func TestGoldenTheorem1DetectionTimes(t *testing.T) {
	const horizon = 1e4
	for _, cell := range theorem1SearchCells(5) {
		k, f := cell[0], cell[1]
		s, err := strategy.NewCyclicExponential(2, k, f)
		if err != nil {
			t.Fatalf("(k=%d, f=%d): %v", k, f, err)
		}
		closed, err := bounds.AKF(k, f)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := adversary.ExactRatio(s, f, horizon)
		if err != nil {
			t.Fatalf("(k=%d, f=%d): adversary: %v", k, f, err)
		}
		// The supremum is approached as x -> WorstX from above; probe
		// just past it through the event simulator.
		x := ev.WorstX * (1 + 1e-9)
		res, err := Run(Config{
			Strategy:      s,
			Faults:        f,
			Target:        trajectory.Point{Ray: ev.WorstRay, Dist: x},
			HorizonFactor: 2*closed + 8,
		})
		if err != nil {
			t.Fatalf("(k=%d, f=%d): sim at worst point: %v", k, f, err)
		}
		if rel := math.Abs(res.Ratio-ev.WorstRatio) / ev.WorstRatio; rel > 1e-6 {
			t.Errorf("(k=%d, f=%d): simulated ratio %.12g at the adversary's worst point, analytic %.12g (rel %g)",
				k, f, res.Ratio, ev.WorstRatio, rel)
		}
		if res.Ratio > closed*(1+1e-9) {
			t.Errorf("(k=%d, f=%d): simulated ratio %.12g exceeds the closed form %.12g", k, f, res.Ratio, closed)
		}
		// The measured supremum itself matches Theorem 1 to sweep
		// accuracy (the recorded tables run at rel gap ~1e-3).
		if rel := math.Abs(ev.WorstRatio-closed) / closed; rel > 5e-3 {
			t.Errorf("(k=%d, f=%d): measured sup %.9g vs closed form %.9g (rel %g)", k, f, ev.WorstRatio, closed, rel)
		}
	}
}

// TestGoldenDetectionIsOrderStatistic re-derives the simulator's
// detection time independently on the Theorem 1 grid: the adversarial
// detection time at a target must equal the (f+1)-st smallest
// first-arrival time among the robots, computed directly from the
// trajectories.
func TestGoldenDetectionIsOrderStatistic(t *testing.T) {
	for _, cell := range theorem1SearchCells(4) {
		k, f := cell[0], cell[1]
		s, err := strategy.NewCyclicExponential(2, k, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, dist := range []float64{1, 3.7, 42} {
			for ray := 1; ray <= 2; ray++ {
				target := trajectory.Point{Ray: ray, Dist: dist}
				res, err := Run(Config{Strategy: s, Faults: f, Target: target, HorizonFactor: 30})
				if err != nil {
					t.Fatalf("(k=%d, f=%d) at %v: %v", k, f, target, err)
				}
				trajs, err := strategy.Trajectories(s, dist*30)
				if err != nil {
					t.Fatal(err)
				}
				var arrivals []float64
				for _, tr := range trajs {
					if at := tr.FirstVisit(target); !math.IsInf(at, 1) {
						arrivals = append(arrivals, at)
					}
				}
				if len(arrivals) <= f {
					t.Fatalf("(k=%d, f=%d) at %v: only %d arrivals", k, f, target, len(arrivals))
				}
				// Selection by repeated minimum extraction keeps this
				// independent of the simulator's sort.
				for round := 0; round < f; round++ {
					min := 0
					for i := range arrivals {
						if arrivals[i] < arrivals[min] {
							min = i
						}
					}
					arrivals = append(arrivals[:min], arrivals[min+1:]...)
				}
				want := math.Inf(1)
				for _, at := range arrivals {
					if at < want {
						want = at
					}
				}
				if res.DetectionTime != want {
					t.Errorf("(k=%d, f=%d) at %v: sim detection %g, order statistic %g", k, f, target, res.DetectionTime, want)
				}
			}
		}
	}
}
