// Package report renders the experiment harness's tables and series as
// aligned Markdown or CSV. It exists so that cmd/experiments and the
// benchmark harness print every reproduced table and figure of the paper
// in one consistent format (EXPERIMENTS.md is assembled from this output).
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Short rows are padded with empty cells. A row
// with more cells than the table has columns is a programming error —
// silently dropping the excess once hid real data from rendered
// tables — so it panics instead of truncating.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: AddRow got %d cells for %d columns (row %v, columns %v)",
			len(cells), len(t.Columns), cells, t.Columns))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as a pipe table with aligned columns,
// preceded by the title as a heading.
func (t *Table) Markdown() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, cell := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Fmt formats a float for table cells: fixed significant digits, with
// infinities and NaN spelled out.
func Fmt(v float64, digits int) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	default:
		return strconv.FormatFloat(v, 'g', digits, 64)
	}
}

// Series is a one-dimensional sweep (the library's "figure"): y as a
// function of x, rendered as a two-column table.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X, Y   []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Markdown renders the series as a two-column table.
func (s *Series) Markdown() string {
	t := NewTable(s.Name, s.XLabel, s.YLabel)
	for i := range s.X {
		t.AddRow(Fmt(s.X[i], 8), Fmt(s.Y[i], 8))
	}
	return t.Markdown()
}

// ArgMin returns the x at which y is smallest (NaN for an empty series).
func (s *Series) ArgMin() float64 {
	if len(s.X) == 0 {
		return math.NaN()
	}
	best := 0
	for i := range s.Y {
		if s.Y[i] < s.Y[best] {
			best = i
		}
	}
	return s.X[best]
}

// ArgMax returns the x at which y is largest (NaN for an empty series).
func (s *Series) ArgMax() float64 {
	if len(s.X) == 0 {
		return math.NaN()
	}
	best := 0
	for i := range s.Y {
		if s.Y[i] > s.Y[best] {
			best = i
		}
	}
	return s.X[best]
}
