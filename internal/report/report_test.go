package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "k", "f", "lambda")
	tb.AddRow("1", "0", "9")
	tb.AddRow("3", "1", "5.2333")
	md := tb.Markdown()
	if !strings.Contains(md, "### Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(md, "| k | f | lambda |") {
		t.Errorf("header row malformed:\n%s", md)
	}
	if !strings.Contains(md, "5.2333") {
		t.Error("row content missing")
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	// Title, blank, header, separator, two rows.
	if len(lines) != 6 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), md)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Error("short row should be padded")
	}
	if strings.Contains(tb.Markdown(), "###") {
		t.Error("empty title should not emit a heading")
	}
}

// TestTableOverlongRowPanics is the regression test for the silent
// truncation bug: AddRow used to drop cells beyond the column count
// without a trace, so a caller with a mismatched column list lost data
// in every rendered table. Over-long rows are now a panic. (An audit
// of the cmd/experiments and bench-harness call sites found all rows
// at or under their column counts, so nothing was being truncated at
// the time of the fix.)
func TestTableOverlongRowPanics(t *testing.T) {
	tb := NewTable("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("over-long row must panic, not silently truncate")
		}
	}()
	tb.AddRow("x", "y", "overflow")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", "2")
	csv := tb.CSV()
	if !strings.Contains(csv, "name,value\n") {
		t.Error("CSV header malformed")
	}
	if !strings.Contains(csv, "\"with,comma\",2") {
		t.Errorf("comma cell not quoted:\n%s", csv)
	}
}

func TestFmt(t *testing.T) {
	tests := []struct {
		v      float64
		digits int
		want   string
	}{
		{9, 6, "9"},
		{5.23306947, 6, "5.23307"},
		{math.Inf(1), 4, "inf"},
		{math.Inf(-1), 4, "-inf"},
		{math.NaN(), 4, "nan"},
	}
	for _, tt := range tests {
		if got := Fmt(tt.v, tt.digits); got != tt.want {
			t.Errorf("Fmt(%g, %d) = %q, want %q", tt.v, tt.digits, got, tt.want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "alpha sweep"
	s.XLabel = "alpha"
	s.YLabel = "ratio"
	s.Add(1.5, 10)
	s.Add(2.0, 9)
	s.Add(2.5, 9.5)
	if got := s.ArgMin(); got != 2.0 {
		t.Errorf("ArgMin = %g, want 2", got)
	}
	if got := s.ArgMax(); got != 1.5 {
		t.Errorf("ArgMax = %g, want 1.5", got)
	}
	md := s.Markdown()
	if !strings.Contains(md, "alpha sweep") || !strings.Contains(md, "| 2 ") {
		t.Errorf("series markdown malformed:\n%s", md)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if !math.IsNaN(s.ArgMin()) || !math.IsNaN(s.ArgMax()) {
		t.Error("empty series extrema should be NaN")
	}
}
