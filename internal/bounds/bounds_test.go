package bounds

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		name    string
		m, k, f int
		want    Regime
	}{
		{"all faulty", 2, 3, 3, RegimeUnsolvable},
		{"more faulty than robots", 2, 2, 5, RegimeUnsolvable},
		{"trivial line", 2, 4, 1, RegimeTrivial},
		{"trivial exact", 3, 6, 1, RegimeTrivial},
		{"cow path", 2, 1, 0, RegimeSearch},
		{"line one fault", 2, 3, 1, RegimeSearch},
		{"three rays", 3, 2, 0, RegimeSearch},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Classify(tt.m, tt.k, tt.f)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Classify(%d,%d,%d) = %v, want %v", tt.m, tt.k, tt.f, got, tt.want)
			}
		})
	}
}

func TestClassifyInvalid(t *testing.T) {
	for _, c := range []struct{ m, k, f int }{{0, 1, 0}, {2, 0, 0}, {2, 1, -1}} {
		if _, err := Classify(c.m, c.k, c.f); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("Classify(%d,%d,%d) should fail", c.m, c.k, c.f)
		}
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeSearch.String() != "search" || RegimeTrivial.String() != "trivial" ||
		RegimeUnsolvable.String() != "unsolvable" {
		t.Error("Regime.String misbehaves")
	}
	if Regime(99).String() == "" {
		t.Error("unknown regime should still produce a string")
	}
}

func TestAKFKnownValues(t *testing.T) {
	tests := []struct {
		name string
		k, f int
		want float64
	}{
		// k=1, f=0: s=2, rho=2 -> 2*4+1 = 9: the classical cow path.
		{"cow path", 1, 0, 9},
		// k=2, f=1: s=2, rho=2 -> 9 again (one fault eats the extra robot
		// on the line: you need both robots at every point).
		{"two robots one fault", 2, 2 - 1, 9},
		// k=3, f=1: s=1, rho=4/3 -> (8/3)*4^(1/3)+1, the B(3,1) number.
		{"three robots one fault", 3, 1, 8.0/3.0*math.Cbrt(4) + 1},
		// k=3, f=2: s=3, rho=2 -> 9.
		{"three robots two faults", 3, 2, 9},
		// k=4, f=1: s=0 boundary -> trivial regime, ratio 1.
		{"four robots one fault trivial", 4, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := AKF(tt.k, tt.f)
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.EqualWithin(got, tt.want, 1e-12) {
				t.Errorf("AKF(%d,%d) = %.15g, want %.15g", tt.k, tt.f, got, tt.want)
			}
		})
	}
}

func TestAKFUnsolvable(t *testing.T) {
	got, err := AKF(2, 2)
	if !errors.Is(err, ErrUnsolvable) {
		t.Fatalf("AKF(2,2) error = %v, want ErrUnsolvable", err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("AKF(2,2) = %g, want +Inf", got)
	}
}

func TestAMKFEqualsAKFOnLine(t *testing.T) {
	// Substituting m = 2 into Eq. (9) recovers Eq. (1), per the paper.
	for k := 1; k <= 8; k++ {
		for f := 0; f < k; f++ {
			line, errLine := AKF(k, f)
			gen, errGen := AMKF(2, k, f)
			if (errLine == nil) != (errGen == nil) {
				t.Fatalf("error mismatch at k=%d f=%d: %v vs %v", k, f, errLine, errGen)
			}
			if errLine != nil {
				continue
			}
			if !numeric.EqualWithin(line, gen, 1e-13) {
				t.Errorf("AKF(%d,%d)=%.15g != AMKF(2,%d,%d)=%.15g", k, f, line, k, f, gen)
			}
		}
	}
}

func TestAMKFSingleRobotClassics(t *testing.T) {
	// k=1, f=0 on m rays must equal the classical 1 + 2m^m/(m-1)^(m-1).
	for m := 2; m <= 8; m++ {
		got, err := AMKF(m, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SingleRobotMRays(m)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(got, want, 1e-12) {
			t.Errorf("AMKF(%d,1,0) = %.15g, want %.15g", m, got, want)
		}
	}
}

func TestSingleRobotMRaysValues(t *testing.T) {
	got, err := SingleRobotMRays(2)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.EqualWithin(got, 9, 1e-13) {
		t.Errorf("SingleRobotMRays(2) = %.15g, want 9", got)
	}
	// m=3: 1 + 2*27/4 = 14.5.
	got3, err := SingleRobotMRays(3)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.EqualWithin(got3, 14.5, 1e-13) {
		t.Errorf("SingleRobotMRays(3) = %.15g, want 14.5", got3)
	}
	if _, err := SingleRobotMRays(1); err == nil {
		t.Error("SingleRobotMRays(1) should fail")
	}
}

func TestMuQKScaleInvariance(t *testing.T) {
	// The paper notes mu(q,k) = mu(cq,ck) for any c > 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Float64()*10
		q := k + 0.1 + rng.Float64()*20
		c := 0.1 + rng.Float64()*10
		a, err1 := MuQK(q, k)
		b, err2 := MuQK(c*q, c*k)
		if err1 != nil || err2 != nil {
			return false
		}
		return numeric.EqualWithin(a, b, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMuQKMonotone(t *testing.T) {
	// The paper uses mu(q,k) < mu(q-1,k-1) for q > k > 1.
	for q := 3; q <= 20; q++ {
		for k := 2; k < q; k++ {
			a, err := MuQK(float64(q), float64(k))
			if err != nil {
				t.Fatal(err)
			}
			b, err := MuQK(float64(q-1), float64(k-1))
			if err != nil {
				t.Fatal(err)
			}
			if !(a < b) {
				t.Errorf("mu(%d,%d)=%.12g should be < mu(%d,%d)=%.12g", q, k, a, q-1, k-1, b)
			}
		}
	}
}

func TestRhoFormMatchesLambda0(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Float64()*10
		rho := 1.01 + rng.Float64()*5
		q := rho * k
		viaRho, err1 := RhoForm(rho)
		viaQK, err2 := Lambda0(q, k)
		if err1 != nil || err2 != nil {
			return false
		}
		return numeric.EqualWithin(viaRho, viaQK, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRhoFormDomain(t *testing.T) {
	if _, err := RhoForm(1); err == nil {
		t.Error("RhoForm(1) should fail")
	}
	if _, err := RhoForm(0.5); err == nil {
		t.Error("RhoForm(0.5) should fail")
	}
}

func TestCKQMatchesLambda0(t *testing.T) {
	got, err := CKQ(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Lambda0(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("CKQ(3,4) = %g, want %g", got, want)
	}
	if _, err := CKQ(3, 3); err == nil {
		t.Error("CKQ(3,3) should fail (needs q > k)")
	}
}

func TestCEtaValues(t *testing.T) {
	// eta = 2 gives the cow-path kernel: 2*4/1 + 1 = 9.
	got, err := CEta(2)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.EqualWithin(got, 9, 1e-13) {
		t.Errorf("CEta(2) = %.15g, want 9", got)
	}
	if _, err := CEta(1); err == nil {
		t.Error("CEta(1) should fail (formula holds for eta > 1)")
	}
}

func TestCEtaMatchesCKQOnRationals(t *testing.T) {
	// C(eta) at eta = q/k must equal C(k, q), which is how the paper's
	// Eq. (11) reduction works.
	cases := []struct{ k, q int }{{1, 2}, {2, 3}, {3, 4}, {3, 7}, {5, 8}}
	for _, c := range cases {
		eta := float64(c.q) / float64(c.k)
		a, err := CEta(eta)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CKQ(c.k, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(a, b, 1e-12) {
			t.Errorf("CEta(%g)=%.15g != CKQ(%d,%d)=%.15g", eta, a, c.k, c.q, b)
		}
	}
}

func TestSlackS(t *testing.T) {
	if SlackS(3, 1) != 1 || SlackS(1, 0) != 1 || SlackS(2, 1) != 2 || SlackS(4, 1) != 0 {
		t.Error("SlackS misbehaves")
	}
}

func TestRho(t *testing.T) {
	got, err := Rho(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.EqualWithin(got, 4.0/3.0, 1e-15) {
		t.Errorf("Rho(2,3,1) = %g, want 4/3", got)
	}
	if _, err := Rho(0, 1, 0); err == nil {
		t.Error("Rho(0,1,0) should fail")
	}
}

func TestOptimalAlphaMinimizesRatio(t *testing.T) {
	// alpha* must beat nearby alphas for a range of (q, k).
	cases := []struct{ q, k int }{{2, 1}, {4, 3}, {6, 1}, {6, 5}, {9, 4}}
	for _, c := range cases {
		star, err := OptimalAlpha(c.q, c.k)
		if err != nil {
			t.Fatal(err)
		}
		atStar, err := ExpStrategyRatio(star, c.q, c.k)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []float64{0.9, 0.99, 1.01, 1.1} {
			alpha := 1 + (star-1)*d
			if alpha <= 1 {
				continue
			}
			v, err := ExpStrategyRatio(alpha, c.q, c.k)
			if err != nil {
				t.Fatal(err)
			}
			if v < atStar-1e-12 {
				t.Errorf("q=%d k=%d: ratio(%g)=%.15g beats ratio(alpha*)=%.15g",
					c.q, c.k, alpha, v, atStar)
			}
		}
		// And at alpha* the ratio equals lambda0.
		l0, err := Lambda0(float64(c.q), float64(c.k))
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(atStar, l0, 1e-12) {
			t.Errorf("q=%d k=%d: ratio(alpha*)=%.15g, lambda0=%.15g", c.q, c.k, atStar, l0)
		}
	}
}

func TestOptimalAlphaDomain(t *testing.T) {
	if _, err := OptimalAlpha(2, 2); err == nil {
		t.Error("OptimalAlpha(2,2) should fail")
	}
}

func TestExpStrategyRatioDomain(t *testing.T) {
	if _, err := ExpStrategyRatio(1, 2, 1); err == nil {
		t.Error("alpha = 1 should fail")
	}
	if _, err := ExpStrategyRatio(2, 1, 1); err == nil {
		t.Error("q <= k should fail")
	}
}

func TestLemma4(t *testing.T) {
	// The maximizer of x^s (mu-x)^k over (0, mu) is s*mu/(k+s); values at
	// nearby points must not exceed the value at the maximizer.
	mu, s, k := 3.0, 2.0, 5.0
	xStar, err := Lemma4ArgMax(mu, s, k)
	if err != nil {
		t.Fatal(err)
	}
	vStar, err := Lemma4Value(xStar, mu, s, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.5, 1, 1.5, 2, 2.5, 2.9} {
		v, err := Lemma4Value(x, mu, s, k)
		if err != nil {
			t.Fatal(err)
		}
		if v > vStar+1e-12 {
			t.Errorf("Lemma4Value(%g) = %g exceeds max %g at x* = %g", x, v, vStar, xStar)
		}
	}
}

func TestQuickLemma4MaxIsMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.5 + rng.Float64()*10
		s := 0.5 + rng.Float64()*8
		k := 0.5 + rng.Float64()*8
		xStar, err := Lemma4ArgMax(mu, s, k)
		if err != nil {
			return false
		}
		vStar, err := Lemma4Value(xStar, mu, s, k)
		if err != nil {
			return false
		}
		x := rng.Float64() * mu
		if x == 0 || x == mu {
			return true
		}
		v, err := Lemma4Value(x, mu, s, k)
		if err != nil {
			return false
		}
		return v <= vStar*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLemma5DeltaThreshold(t *testing.T) {
	// delta > 1 iff mu < mu(k+s, k); at mu = mu(k+s,k) delta = 1.
	for _, c := range []struct{ s, k int }{{1, 1}, {2, 3}, {1, 3}, {4, 5}} {
		muCrit, err := MuQK(float64(c.k+c.s), float64(c.k))
		if err != nil {
			t.Fatal(err)
		}
		atCrit, err := Lemma5Delta(muCrit, float64(c.s), float64(c.k))
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(atCrit, 1, 1e-12) {
			t.Errorf("s=%d k=%d: delta at critical mu = %.15g, want 1", c.s, c.k, atCrit)
		}
		below, err := Lemma5Delta(muCrit*0.99, float64(c.s), float64(c.k))
		if err != nil {
			t.Fatal(err)
		}
		if below <= 1 {
			t.Errorf("s=%d k=%d: delta below critical mu = %.15g, want > 1", c.s, c.k, below)
		}
		above, err := Lemma5Delta(muCrit*1.01, float64(c.s), float64(c.k))
		if err != nil {
			t.Fatal(err)
		}
		if above >= 1 {
			t.Errorf("s=%d k=%d: delta above critical mu = %.15g, want < 1", c.s, c.k, above)
		}
	}
}

func TestByzantineImprovement(t *testing.T) {
	lb, err := ByzantineLB(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.EqualWithin(lb, B31Improved(), 1e-13) {
		t.Errorf("ByzantineLB(3,1) = %.15g, want B31Improved = %.15g", lb, B31Improved())
	}
	if !(B31Improved() > B31Prior) {
		t.Errorf("improved bound %.6g should exceed prior %.6g", B31Improved(), B31Prior)
	}
	if math.Abs(B31Improved()-5.2333) > 0.001 {
		t.Errorf("B31Improved = %.6g, expected ~5.2333", B31Improved())
	}
}

func TestInvertRho(t *testing.T) {
	// Round trip: rho -> lambda -> rho.
	for _, rho := range []float64{1.2, 4.0 / 3.0, 1.7, 2, 3, 5} {
		lambda, err := RhoForm(rho)
		if err != nil {
			t.Fatal(err)
		}
		back, err := InvertRho(lambda)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(back, rho, 1e-9) {
			t.Errorf("InvertRho(RhoForm(%g)) = %.12g", rho, back)
		}
	}
	if _, err := InvertRho(2.5); err == nil {
		t.Error("InvertRho below 3 should fail")
	}
}

func TestHighPrecisionBoundAgreesWithFloat(t *testing.T) {
	cases := []struct{ q, k int }{{2, 1}, {4, 3}, {6, 5}, {12, 7}}
	for _, c := range cases {
		hp, err := HighPrecisionBound(c.q, c.k, 128)
		if err != nil {
			t.Fatal(err)
		}
		l0, err := Lambda0(float64(c.q), float64(c.k))
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(hp.Lambda0.Float64(), l0, 1e-12) {
			t.Errorf("q=%d k=%d: certified %.17g vs float %.17g",
				c.q, c.k, hp.Lambda0.Float64(), l0)
		}
		mu, err := MuQK(float64(c.q), float64(c.k))
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.EqualWithin(hp.Mu.Float64(), mu, 1e-12) {
			t.Errorf("q=%d k=%d: certified mu %.17g vs float %.17g",
				c.q, c.k, hp.Mu.Float64(), mu)
		}
	}
}

func TestHighPrecisionBoundInvalid(t *testing.T) {
	if _, err := HighPrecisionBound(3, 3, 64); err == nil {
		t.Error("HighPrecisionBound(3,3) should fail")
	}
}

func TestQuickAMKFAtLeastOne(t *testing.T) {
	// Property: every solvable configuration has ratio >= 1, and the
	// search regime is strictly above 3 (rho > 1 forces lambda > 3).
	f := func(mRaw, kRaw, fRaw uint8) bool {
		m := int(mRaw%6) + 2
		k := int(kRaw%10) + 1
		ff := int(fRaw % 10)
		regime, err := Classify(m, k, ff)
		if err != nil {
			return false
		}
		v, err := AMKF(m, k, ff)
		switch regime {
		case RegimeUnsolvable:
			return errors.Is(err, ErrUnsolvable) && math.IsInf(v, 1)
		case RegimeTrivial:
			return err == nil && v == 1
		default:
			return err == nil && v > 3
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickMoreFaultsNeverHelp(t *testing.T) {
	// Property: with m and k fixed, the ratio is nondecreasing in f over
	// the search regime (more faults can only hurt).
	f := func(mRaw, kRaw uint8) bool {
		m := int(mRaw%5) + 2
		k := int(kRaw%8) + 2
		prev := 0.0
		for ff := 0; ff < k; ff++ {
			regime, err := Classify(m, k, ff)
			if err != nil || regime != RegimeSearch {
				continue
			}
			v, err := AMKF(m, k, ff)
			if err != nil {
				return false
			}
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMoreRobotsNeverHurt(t *testing.T) {
	// Property: with m and f fixed, the ratio is nonincreasing in k.
	f := func(mRaw, fRaw uint8) bool {
		m := int(mRaw%5) + 2
		ff := int(fRaw % 3)
		prev := math.Inf(1)
		for k := ff + 1; k <= m*(ff+1)+2; k++ {
			v, err := AMKF(m, k, ff)
			if err != nil {
				return false
			}
			if v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
