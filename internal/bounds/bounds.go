// Package bounds implements every closed-form quantity in Kupavskii–Welzl,
// "Lower Bounds for Searching Robots, some Faulty" (PODC 2018):
//
//   - Theorem 1: A(k,f), the optimal competitive ratio for k robots on the
//     line with f crash-faulty robots;
//   - Theorem 3: the s-fold ±-covering bound (same kernel as Theorem 1);
//   - Theorem 6 / Eq. (9): A(m,k,f) for m rays, with q = m(f+1);
//   - Eq. (10): the ORC covering bound C(k,q);
//   - Eq. (11): the fractional bound C(eta);
//   - Lemmas 4 and 5 (the polynomial maximization underlying everything);
//   - the appendix's optimal exponential base alpha* = (q/(q-k))^(1/k);
//   - the Byzantine transfer B(k,f) >= A(k,f), including the paper's
//     improved B(3,1) >= (8/3)*4^(1/3) + 1 ~ 5.23.
//
// All evaluations go through log space (internal/numeric.PowRatio), so they
// are finite whenever the mathematical value is, even when q^q would
// overflow float64. High-precision certified versions are available through
// HighPrecision (backed by exact big.Rat kernels and certified k-th roots).
package bounds

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Regime classifies a parameter triple (m, k, f) into the paper's cases.
type Regime int

const (
	// RegimeUnsolvable: f >= k; all robots may be faulty, the target can
	// never be confirmed (competitive ratio +Inf).
	RegimeUnsolvable Regime = iota + 1
	// RegimeTrivial: k >= m(f+1); sending f+1 robots down each ray gives
	// competitive ratio exactly 1.
	RegimeTrivial
	// RegimeSearch: f < k < m(f+1); the interesting regime where Theorem 6
	// applies and the ratio is lambda0.
	RegimeSearch
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case RegimeUnsolvable:
		return "unsolvable"
	case RegimeTrivial:
		return "trivial"
	case RegimeSearch:
		return "search"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Errors returned by the bound evaluators.
var (
	// ErrUnsolvable is returned when f >= k (all robots may be faulty).
	ErrUnsolvable = errors.New("bounds: all robots may be faulty (f >= k); target cannot be confirmed")
	// ErrInvalidParams is returned for nonsensical parameters (m < 1,
	// k < 1, f < 0, eta <= 1 where a strict inequality is required, ...).
	ErrInvalidParams = errors.New("bounds: invalid parameters")
)

// Classify returns the regime of searching m rays with k robots, f faulty.
func Classify(m, k, f int) (Regime, error) {
	if m < 1 || k < 1 || f < 0 {
		return 0, fmt.Errorf("%w: m=%d k=%d f=%d", ErrInvalidParams, m, k, f)
	}
	switch {
	case f >= k:
		return RegimeUnsolvable, nil
	case k >= m*(f+1):
		return RegimeTrivial, nil
	default:
		return RegimeSearch, nil
	}
}

// MuQK returns mu(q,k) = (q^q / ((q-k)^(q-k) * k^k))^(1/k) for real
// arguments 0 < k < q. lambda0 = 2*mu + 1. The function is scale-invariant:
// mu(cq, ck) = mu(q, k) for all c > 0.
func MuQK(q, k float64) (float64, error) {
	if !(k > 0 && q > k) {
		return 0, fmt.Errorf("%w: MuQK requires 0 < k < q, got q=%g k=%g", ErrInvalidParams, q, k)
	}
	return numeric.PowRatio(q, q-k, k)
}

// Lambda0 returns the competitive-ratio bound 2*mu(q,k) + 1 of Theorem 6
// for real 0 < k < q.
func Lambda0(q, k float64) (float64, error) {
	mu, err := MuQK(q, k)
	if err != nil {
		return 0, err
	}
	return 2*mu + 1, nil
}

// RhoForm returns 2*rho^rho/(rho-1)^(rho-1) + 1 for rho > 1, the form in
// which Theorem 1 states the bound (rho = q/k). It equals Lambda0(q,k)
// whenever rho = q/k, by the scale invariance of mu.
func RhoForm(rho float64) (float64, error) {
	if rho <= 1 {
		return 0, fmt.Errorf("%w: RhoForm requires rho > 1, got %g", ErrInvalidParams, rho)
	}
	// rho^rho/(rho-1)^(rho-1) = exp(rho*ln rho - (rho-1)*ln(rho-1)).
	return 2*math.Exp(numeric.XLogX(rho)-numeric.XLogX(rho-1)) + 1, nil
}

// AKF returns A(k, f), the optimal competitive ratio for searching the line
// (Theorem 1): k robots, f of them crash-faulty.
//
//   - f >= k: ErrUnsolvable;
//   - k >= 2(f+1) (s <= 0): ratio 1 (send f+1 robots each way);
//   - otherwise: 2*((k+s)^(k+s)/(s^s k^k))^(1/k) + 1 with s = 2(f+1)-k.
func AKF(k, f int) (float64, error) {
	return AMKF(2, k, f)
}

// AMKF returns A(m, k, f), the optimal competitive ratio for searching m
// rays (Theorem 6): k robots, f crash-faulty, q = m(f+1).
func AMKF(m, k, f int) (float64, error) {
	regime, err := Classify(m, k, f)
	if err != nil {
		return 0, err
	}
	switch regime {
	case RegimeUnsolvable:
		return math.Inf(1), ErrUnsolvable
	case RegimeTrivial:
		return 1, nil
	default:
		return Lambda0(float64(m*(f+1)), float64(k))
	}
}

// CKQ returns the bound of Eq. (10): the infimum competitive ratio for
// q-fold lambda-covering of R>=1 with k robots in the one-ray-cover-with-
// returns (ORC) setting, which the paper proves equals lambda0(q,k).
func CKQ(k, q int) (float64, error) {
	if k < 1 || q <= k {
		return 0, fmt.Errorf("%w: CKQ requires 1 <= k < q, got k=%d q=%d", ErrInvalidParams, k, q)
	}
	return Lambda0(float64(q), float64(k))
}

// CEta returns C(eta) = 2*eta^eta/(eta-1)^(eta-1) + 1 of Eq. (11), the
// competitive ratio of fractional one-ray retrieval with returns, for
// eta > 1. (At eta = 1 the formula's limit is 3 while a single sweep
// achieves 1; the formula is stated for the genuinely fractional regime.)
func CEta(eta float64) (float64, error) {
	if eta <= 1 {
		return 0, fmt.Errorf("%w: CEta requires eta > 1, got %g", ErrInvalidParams, eta)
	}
	return RhoForm(eta)
}

// Rho returns rho = m(f+1)/k, the single parameter the bound depends on.
func Rho(m, k, f int) (float64, error) {
	if m < 1 || k < 1 || f < 0 {
		return 0, fmt.Errorf("%w: m=%d k=%d f=%d", ErrInvalidParams, m, k, f)
	}
	return float64(m*(f+1)) / float64(k), nil
}

// SlackS returns s = 2(f+1) - k, the line-case excess of Theorem 1.
func SlackS(k, f int) int { return 2*(f+1) - k }

// OptimalAlpha returns the base alpha* = (q/(q-k))^(1/k) of the appendix's
// cyclic exponential strategy, the unique minimizer of alpha^q/(alpha^k-1)
// over alpha > 1. Requires 0 < k < q.
func OptimalAlpha(q, k int) (float64, error) {
	if k < 1 || q <= k {
		return 0, fmt.Errorf("%w: OptimalAlpha requires 1 <= k < q, got q=%d k=%d", ErrInvalidParams, q, k)
	}
	return math.Pow(float64(q)/float64(q-k), 1/float64(k)), nil
}

// ExpStrategyRatio returns the competitive ratio 2*alpha^q/(alpha^k-1) + 1
// achieved by the appendix's cyclic exponential strategy with base alpha on
// the q = m(f+1) covering problem with k robots. Minimized at OptimalAlpha,
// where it equals lambda0(q,k).
func ExpStrategyRatio(alpha float64, q, k int) (float64, error) {
	if alpha <= 1 {
		return 0, fmt.Errorf("%w: ExpStrategyRatio requires alpha > 1, got %g", ErrInvalidParams, alpha)
	}
	if k < 1 || q <= k {
		return 0, fmt.Errorf("%w: ExpStrategyRatio requires 1 <= k < q, got q=%d k=%d", ErrInvalidParams, q, k)
	}
	lg := float64(q)*math.Log(alpha) - math.Log(math.Pow(alpha, float64(k))-1)
	return 2*math.Exp(lg) + 1, nil
}

// Lemma4ArgMax returns x* = s*mu/(k+s), the maximizer of x^s (mu-x)^k over
// (0, mu) established by Lemma 4.
func Lemma4ArgMax(mu, s, k float64) (float64, error) {
	if mu <= 0 || s <= 0 || k <= 0 {
		return 0, fmt.Errorf("%w: Lemma4ArgMax(mu=%g, s=%g, k=%g)", ErrInvalidParams, mu, s, k)
	}
	return s * mu / (k + s), nil
}

// Lemma4Value returns x^s * (mu-x)^k evaluated in log space (finite for all
// 0 < x < mu even when the direct product would under/overflow).
func Lemma4Value(x, mu, s, k float64) (float64, error) {
	if !(x > 0 && x < mu) {
		return 0, fmt.Errorf("%w: Lemma4Value requires 0 < x < mu", ErrInvalidParams)
	}
	return math.Exp(s*math.Log(x) + k*math.Log(mu-x)), nil
}

// Lemma5Delta returns delta = (k+s)^(k+s) / (s^s * k^k * mu^k), the uniform
// per-step growth factor of the potential function from Lemma 5. The lemma
// guarantees delta > 1 exactly when mu < mu(k+s, k), i.e. when the claimed
// competitive ratio is below the Theorem 3 bound.
func Lemma5Delta(mu, s, k float64) (float64, error) {
	if mu <= 0 || s <= 0 || k <= 0 {
		return 0, fmt.Errorf("%w: Lemma5Delta(mu=%g, s=%g, k=%g)", ErrInvalidParams, mu, s, k)
	}
	lg := numeric.XLogX(k+s) - numeric.XLogX(s) - numeric.XLogX(k) - k*math.Log(mu)
	return math.Exp(lg), nil
}

// ByzantineLB returns the paper's lower bound for Byzantine-type faulty
// robots obtained by transfer from the crash-type bound: B(k,f) >= A(k,f).
// It returns the same values as AKF (the transfer is an inequality; the
// crash value is the best lower bound the paper provides).
func ByzantineLB(k, f int) (float64, error) {
	return AKF(k, f)
}

// B31Improved returns the paper's improved bound B(3,1) >= (8/3)*4^(1/3)+1
// (~5.2333), quoted in the introduction against the prior bound 3.93.
func B31Improved() float64 {
	return 8.0/3.0*math.Cbrt(4) + 1
}

// B31Prior is the previously best known lower bound for B(3,1), from
// Czyzowitz et al., ISAAC 2016 (reference [13] of the paper).
const B31Prior = 3.93

// SingleRobotMRays returns 1 + 2*m^m/(m-1)^(m-1), the classical optimal
// ratio for one robot searching m rays (Baeza-Yates–Culberson–Rawlins);
// m = 2 gives the cow-path constant 9. It coincides with AMKF(m, 1, 0).
func SingleRobotMRays(m int) (float64, error) {
	if m < 2 {
		return 0, fmt.Errorf("%w: SingleRobotMRays requires m >= 2, got %d", ErrInvalidParams, m)
	}
	return RhoForm(float64(m))
}

// InvertRho returns the rho > 1 whose RhoForm value equals lambda, i.e. it
// inverts the bound formula. RhoForm is strictly increasing on (1, inf)
// with infimum 3 as rho -> 1+, so lambda must exceed 3.
func InvertRho(lambda float64) (float64, error) {
	if lambda <= 3 {
		return 0, fmt.Errorf("%w: InvertRho requires lambda > 3, got %g", ErrInvalidParams, lambda)
	}
	f := func(rho float64) float64 {
		v, err := RhoForm(rho)
		if err != nil {
			return math.NaN()
		}
		return v - lambda
	}
	lo := 1 + 1e-12
	hi := 2.0
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("%w: InvertRho(%g) out of range", ErrInvalidParams, lambda)
		}
	}
	return numeric.Bisect(f, lo, hi, 1e-13, 400)
}

// HighPrecision holds certified enclosures for the bound values of a search
// problem, computed via exact rational kernels and certified k-th roots.
type HighPrecision struct {
	// Mu encloses mu(q, k).
	Mu numeric.RootEnclosure
	// Lambda0 encloses 2*mu + 1.
	Lambda0 numeric.RootEnclosure
}

// HighPrecisionBound returns certified enclosures of mu(q,k) and
// lambda0(q,k) at prec bits, for integers 0 < k < q.
func HighPrecisionBound(q, k int, prec uint) (HighPrecision, error) {
	mu, err := numeric.BigMu(q, k, prec)
	if err != nil {
		return HighPrecision{}, fmt.Errorf("bounds: high-precision mu: %w", err)
	}
	l0, err := numeric.BigLambda0(q, k, prec)
	if err != nil {
		return HighPrecision{}, fmt.Errorf("bounds: high-precision lambda0: %w", err)
	}
	return HighPrecision{Mu: mu, Lambda0: l0}, nil
}
