package trajectory

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzNewPlanar drives planar-trajectory construction and its queries
// with arbitrary waypoint bytes: NewPlanar must never panic, must
// reject exactly the documented degeneracies, and every accepted
// trajectory must satisfy the parametrization invariants (finite
// positive horizon, endpoint-anchored positions, line-hit times inside
// [0, Horizon]). This is the never-panic gate CI's fuzz smoke step
// runs alongside FuzzCompile.
func FuzzNewPlanar(f *testing.F) {
	seed := func(pts ...float64) []byte {
		b := make([]byte, 8*len(pts))
		for i, v := range pts {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(0, 0, 3, 4, 3, 0), 0.5, 1.0)
	f.Add(seed(0, 0, 1, 0), 0.0, 0.5)
	f.Add(seed(0, 0, math.NaN(), 1), 1.0, 1.0)
	f.Add(seed(1, 1, 1, 1), 2.0, 0.0)
	f.Add(seed(), 0.0, 0.0)

	f.Fuzz(func(t *testing.T, data []byte, angle, c float64) {
		n := len(data) / 16
		if n > 64 {
			n = 64
		}
		pts := make([]Vec, n)
		for i := range pts {
			pts[i] = Vec{
				X: math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:])),
			}
		}
		p, err := NewPlanar(pts)
		if err != nil {
			if p != nil {
				t.Fatal("NewPlanar returned both a trajectory and an error")
			}
			return
		}
		h := p.Horizon()
		if !(h > 0) || math.IsInf(h, 0) || math.IsNaN(h) {
			t.Fatalf("accepted trajectory has horizon %g (want positive finite)", h)
		}
		if got := p.Position(0); got != pts[0] {
			t.Fatalf("Position(0) = %v, want start %v", got, pts[0])
		}
		last := pts[len(pts)-1]
		if got := p.Position(h); got.Sub(last).Norm() > 1e-6*(1+h) {
			t.Fatalf("Position(Horizon) = %v, want ~%v", got, last)
		}
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			if got := p.Position(frac * h); !got.finite() {
				t.Fatalf("Position(%g) = %v is not finite", frac*h, got)
			}
		}
		hit := p.FirstHitLine(UnitDir(angle), c)
		switch {
		case math.IsNaN(hit): // degenerate query inputs
		case math.IsInf(hit, 1): // never hits
		case hit >= 0 && hit <= h: // a real crossing, inside the horizon
		default:
			t.Fatalf("FirstHitLine = %g outside [0, %g]", hit, h)
		}
	})
}
