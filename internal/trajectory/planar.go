// planar.go generalizes the trajectory layer from the star S_m to the
// plane: a Planar trajectory is a unit-speed piecewise-linear path in
// R^2, the geometry the shoreline-search scenario family (Acharjee–
// Georgiou–Kundu–Srinivasan 2020) runs on. The line/star trajectories
// of the Kupavskii–Welzl setting are the 1D specialization: an S_2 star
// embeds onto the x-axis (PlanarFromStar with the axis directions), and
// the embedded path's first crossing of the vertical line at offset x
// is bit-identical to Star.FirstVisit of the point at distance x — the
// specialization guarantee pinned by TestPlanarSpecializesStar.
//
// Exactness is engineered, not accidental: PlanarFromStar seeds the
// per-waypoint arrival times from the star's own compensated prefix
// sums (not from recomputed Euclidean lengths), and FirstHitLine
// interpolates with the stored segment length, so an outbound crossing
// evaluates to the same float expression 2*PrefixSum(i) + x the star
// uses.
package trajectory

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
)

// Vec is a point (or displacement) in the plane.
type Vec struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns c * v.
func (v Vec) Scale(c float64) Vec { return Vec{c * v.X, c * v.Y} }

// Dot returns the inner product v . w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// finite reports whether both coordinates are finite (not NaN/Inf).
func (v Vec) finite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) && !math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// UnitDir returns the unit vector at the given heading (radians,
// counterclockwise from the positive x-axis). Headings that are exact
// multiples of pi/2 snap to the exact axis vectors, so the canonical
// m = 2 and m = 4 star embeddings use exact +-(1,0) / (0,+-1)
// directions instead of sin/cos rounded near zero.
func UnitDir(angle float64) Vec {
	switch angle {
	case 0:
		return Vec{1, 0}
	case math.Pi / 2:
		return Vec{0, 1}
	case math.Pi:
		return Vec{-1, 0}
	case 3 * math.Pi / 2, -math.Pi / 2:
		return Vec{0, -1}
	}
	return Vec{math.Cos(angle), math.Sin(angle)}
}

// StarDirections returns the canonical embedding directions of the star
// S_m into the plane: ray i heads at angle 2*pi*(i-1)/m.
func StarDirections(m int) []Vec {
	dirs := make([]Vec, m)
	for i := range dirs {
		dirs[i] = UnitDir(2 * math.Pi * float64(i) / float64(m))
	}
	return dirs
}

// Planar is a unit-speed piecewise-linear trajectory in the plane: the
// robot starts at pts[0] at time 0 and moves along each segment in
// order at speed 1. cum[i] is the arrival time at pts[i] and seg[i] the
// duration of segment i; both are stored (rather than derived from the
// points) so that embeddings of 1D trajectories can carry the exact
// compensated times of the source trajectory.
type Planar struct {
	pts []Vec
	seg []float64 // seg[i] = duration of pts[i] -> pts[i+1], all > 0
	cum []float64 // cum[i] = arrival time at pts[i]; cum[0] = 0
}

// NewPlanar builds a Planar trajectory through the given waypoints.
// It requires at least two waypoints, finite coordinates, and strictly
// positive (non-degenerate) segments; segment durations are the
// Euclidean lengths, accumulated with compensated summation.
func NewPlanar(pts []Vec) (*Planar, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("%w: planar trajectory needs >= 2 waypoints, got %d", ErrBadSequence, len(pts))
	}
	cp := make([]Vec, len(pts))
	copy(cp, pts)
	seg := make([]float64, len(pts)-1)
	cum := make([]float64, len(pts))
	var acc numeric.Kahan
	for i, p := range cp {
		if !p.finite() {
			return nil, fmt.Errorf("%w: waypoint %d = (%g, %g) is not finite", ErrBadSequence, i, p.X, p.Y)
		}
		if i == 0 {
			continue
		}
		l := p.Sub(cp[i-1]).Norm()
		if !(l > 0) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("%w: segment %d has length %g (want positive finite)", ErrBadSequence, i, l)
		}
		seg[i-1] = l
		acc.Add(l)
		cum[i] = acc.Value()
		if !(cum[i] > cum[i-1]) || math.IsInf(cum[i], 0) {
			return nil, fmt.Errorf("%w: cumulative time is not strictly increasing at waypoint %d", ErrBadSequence, i)
		}
	}
	return &Planar{pts: cp, seg: seg, cum: cum}, nil
}

// newPlanarTimed builds a Planar from waypoints with caller-supplied
// exact segment durations and arrival times (used by the 1D
// embeddings, which carry the source trajectory's compensated sums).
func newPlanarTimed(pts []Vec, seg, cum []float64) *Planar {
	return &Planar{pts: pts, seg: seg, cum: cum}
}

// NumPoints returns the number of waypoints.
func (p *Planar) NumPoints() int { return len(p.pts) }

// PointAt returns the i-th waypoint (0-based).
func (p *Planar) PointAt(i int) Vec { return p.pts[i] }

// Start returns the initial position.
func (p *Planar) Start() Vec { return p.pts[0] }

// Horizon returns the total duration of the trajectory.
func (p *Planar) Horizon() float64 { return p.cum[len(p.cum)-1] }

// Position returns the robot's location at time 0 <= t <= Horizon().
// Outside that range (or for NaN t) both coordinates are NaN, matching
// the Line/Star out-of-horizon convention.
func (p *Planar) Position(t float64) Vec {
	if t < 0 || t > p.Horizon() || math.IsNaN(t) {
		return Vec{math.NaN(), math.NaN()}
	}
	// Segment i occupies [cum[i], cum[i+1]].
	i := sort.Search(len(p.seg), func(j int) bool { return p.cum[j+1] >= t })
	if i == len(p.seg) {
		return p.pts[len(p.pts)-1]
	}
	frac := (t - p.cum[i]) / p.seg[i]
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return p.pts[i].Add(p.pts[i+1].Sub(p.pts[i]).Scale(frac))
}

// FirstHitLine returns the earliest time the trajectory touches the
// line {q : q . n = c} for a nonzero normal n, or +Inf if it never does
// within the horizon. For a degenerate normal or non-finite c it
// returns NaN.
//
// The crossing time within a segment interpolates with the stored
// segment duration: t = cum[i] + (c - a) * (seg[i] / (b - a)), where a
// and b are the projections of the segment endpoints onto n. When the
// segment runs straight along the normal (the 1D embedding case: a = 0
// at the origin, b = seg[i] for a unit axis direction), the scale
// factor divides to exactly 1 and the crossing time is the exact sum
// cum[i] + c — the arithmetic the specialization guarantee relies on.
func (p *Planar) FirstHitLine(n Vec, c float64) float64 {
	if !n.finite() || (n.X == 0 && n.Y == 0) || math.IsNaN(c) || math.IsInf(c, 0) {
		return math.NaN()
	}
	prev := p.pts[0].Dot(n)
	if prev == c {
		return 0
	}
	for i := 0; i < len(p.seg); i++ {
		cur := p.pts[i+1].Dot(n)
		if (prev < c) != (cur < c) || cur == c {
			t := p.cum[i] + (c-prev)*(p.seg[i]/(cur-prev))
			// Guard the interpolation against rounding past the segment.
			if t < p.cum[i] {
				t = p.cum[i]
			}
			if t > p.cum[i+1] {
				t = p.cum[i+1]
			}
			return t
		}
		prev = cur
	}
	return math.Inf(1)
}

// PlanarRay returns the single-segment trajectory heading straight out
// of the origin at the given angle for the given duration — the
// building block of the spread-ray shoreline strategies. The segment
// duration is stored as exactly length (the mathematical arc length of
// a unit direction scaled by length), so line-hit times are not
// perturbed by the rounding of cos^2 + sin^2.
func PlanarRay(angle, length float64) (*Planar, error) {
	if !(length > 0) || math.IsInf(length, 0) || math.IsNaN(length) {
		return nil, fmt.Errorf("%w: ray length %g (want positive finite)", ErrBadSequence, length)
	}
	dir := UnitDir(angle)
	pts := []Vec{{0, 0}, dir.Scale(length)}
	if !pts[1].finite() {
		return nil, fmt.Errorf("%w: ray endpoint is not finite", ErrBadSequence)
	}
	return newPlanarTimed(pts, []float64{length}, []float64{0, length}), nil
}

// PlanarFromStar embeds an S_m star trajectory into the plane, sending
// ray r along dirs[r-1] (unit directions; see StarDirections for the
// canonical choice). Each round contributes an outbound and an inbound
// segment through the origin. The waypoint times are seeded from the
// star's own compensated prefix sums — round i's outbound crossing of
// distance x evaluates to exactly 2*PrefixSum(i) + x, the same float
// expression Star.FirstVisit computes — so the embedding preserves
// visit times bit-for-bit rather than merely approximately.
func PlanarFromStar(s *Star, dirs []Vec) (*Planar, error) {
	if len(dirs) != s.M() {
		return nil, fmt.Errorf("%w: %d directions for %d rays", ErrBadRay, len(dirs), s.M())
	}
	for i, d := range dirs {
		if !d.finite() || (d.X == 0 && d.Y == 0) {
			return nil, fmt.Errorf("%w: direction %d is degenerate", ErrBadSequence, i+1)
		}
	}
	n := s.NumRounds()
	pts := make([]Vec, 1, 2*n+1)
	seg := make([]float64, 0, 2*n)
	cum := make([]float64, 1, 2*n+1)
	pts[0] = Vec{0, 0}
	cum[0] = 0
	for i := 0; i < n; i++ {
		r := s.RoundAt(i)
		start := 2 * s.PrefixSum(i)
		tip := dirs[r.Ray-1].Scale(r.Turn)
		pts = append(pts, tip, Vec{0, 0})
		seg = append(seg, r.Turn, r.Turn)
		cum = append(cum, start+r.Turn, 2*s.PrefixSum(i+1))
	}
	return newPlanarTimed(pts, seg, cum), nil
}
