// Package trajectory models the motion of unit-speed robots in the two
// geometries of Kupavskii–Welzl (PODC 2018):
//
//   - Line: a robot zigzags on the real line R, described by a turning
//     sequence (t1, t2, t3, ...): out to +t1, back through 0 to -t2, out to
//     +t3, and so on (the standard form established in the proof of
//     Theorem 3). The robot never pauses; it passes through 0 without
//     stopping.
//
//   - Star: a robot moves on the star S_m of m rays glued at the origin in
//     rounds (the ORC setting of Section 3): each round goes from 0 out to a
//     turning point on one ray and returns to 0.
//
// Both kinds expose Position(t) and the visit times of arbitrary points, and
// both are consistent with the closed forms the paper relies on: on the
// line, a robot with turning points t1 <= t2 <= ... has visited both +x and
// -x (for t_{i-1} < x <= t_i) by time exactly 2(t1 + ... + t_i) + x; in a
// star round i, point x <= t_i on the round's ray is reached at time
// 2(t1 + ... + t_{i-1}) + x.
package trajectory

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
)

// Errors returned by trajectory constructors and queries.
var (
	// ErrBadSequence is returned for turning sequences that are not
	// positive or violate required monotonicity.
	ErrBadSequence = errors.New("trajectory: invalid turning sequence")
	// ErrBadRay is returned for ray indices outside 1..m.
	ErrBadRay = errors.New("trajectory: ray index out of range")
)

// Point is a location on the star S_m: a ray index (1-based) and a distance
// from the origin. On the line (m = 2), ray 1 is the positive half-line and
// ray 2 the negative half-line. The origin is represented with Dist = 0 (any
// ray index).
type Point struct {
	Ray  int
	Dist float64
}

// Origin is the common endpoint of all rays.
var Origin = Point{Ray: 1, Dist: 0}

// String formats the point as r<ray>:<dist>.
func (p Point) String() string { return fmt.Sprintf("r%d:%g", p.Ray, p.Dist) }

// LineCoord converts a point on S_2 to a signed line coordinate
// (ray 1 -> +Dist, ray 2 -> -Dist).
func (p Point) LineCoord() (float64, error) {
	switch p.Ray {
	case 1:
		return p.Dist, nil
	case 2:
		return -p.Dist, nil
	default:
		return 0, fmt.Errorf("%w: LineCoord of ray %d", ErrBadRay, p.Ray)
	}
}

// PointFromLine converts a signed line coordinate to a Point on S_2.
func PointFromLine(x float64) Point {
	if x >= 0 {
		return Point{Ray: 1, Dist: x}
	}
	return Point{Ray: 2, Dist: -x}
}

// Line is a zigzag trajectory on the real line in the standard form of the
// Theorem 3 proof: the robot starts at 0 moving in the positive direction,
// turns at +t1, then at -t2, then at +t3, alternating sides. Odd-indexed
// turning points (t1, t3, ...) are on the positive side, even-indexed on the
// negative side. The turning distances must be positive; the proof's
// standardization additionally makes same-side turning points increasing,
// which the constructor can enforce on request.
type Line struct {
	turns []float64 // turning distances, all > 0
	// prefix[i] = t1 + ... + t_i, compensated.
	prefix []float64
}

// NewLine builds a Line trajectory from the turning distances. With
// requireMonotone, it rejects sequences whose same-side turning points do
// not strictly increase (the standard form); without it, any positive
// distances are allowed (useful for testing the normalization transforms,
// which repair such sequences).
func NewLine(turns []float64, requireMonotone bool) (*Line, error) {
	prefix := make([]float64, len(turns))
	var acc numeric.Kahan
	for i, t := range turns {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("%w: turn %d is %g (want positive finite)", ErrBadSequence, i+1, t)
		}
		if requireMonotone && i >= 2 && turns[i] <= turns[i-2] {
			return nil, fmt.Errorf("%w: same-side turns must increase, turn %d = %g <= turn %d = %g",
				ErrBadSequence, i+1, turns[i], i-1, turns[i-2])
		}
		acc.Add(t)
		prefix[i] = acc.Value()
	}
	cp := make([]float64, len(turns))
	copy(cp, turns)
	return &Line{turns: cp, prefix: prefix}, nil
}

// Turns returns a copy of the turning distances.
func (l *Line) Turns() []float64 {
	cp := make([]float64, len(l.turns))
	copy(cp, l.turns)
	return cp
}

// NumTurns returns the number of turning points.
func (l *Line) NumTurns() int { return len(l.turns) }

// PrefixSum returns t1 + ... + t_i (i is 1-based; PrefixSum(0) = 0).
func (l *Line) PrefixSum(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i > len(l.prefix) {
		i = len(l.prefix)
	}
	return l.prefix[i-1]
}

// turnTime returns the time at which the robot reaches its i-th turning
// point (1-based): it has traveled t1, then t1+t2, ... — each leg between
// turn i-1 and turn i has length t_{i-1} + t_i (through the origin), so the
// total is 2*PrefixSum(i) - t_i... computed directly from leg geometry.
func (l *Line) turnTime(i int) float64 {
	// Leg 0: 0 -> +t1 takes t1. Leg j (j >= 1): from turn j at distance
	// t_j on one side to turn j+1 at distance t_{j+1} on the other side
	// takes t_j + t_{j+1}. Total time to reach turn i:
	// t1 + sum_{j=2..i} (t_{j-1} + t_j) = 2*(t1+...+t_{i-1}) + t_i.
	return 2*l.PrefixSum(i-1) + l.turns[i-1]
}

// Horizon returns the time at which the robot reaches its final turning
// point. Beyond the horizon the trajectory is undefined (queries return
// NaN / +Inf as documented).
func (l *Line) Horizon() float64 {
	n := len(l.turns)
	if n == 0 {
		return 0
	}
	return l.turnTime(n)
}

// Position returns the signed line coordinate of the robot at time
// 0 <= t <= Horizon(). For t beyond the horizon it returns NaN.
func (l *Line) Position(t float64) float64 {
	if t < 0 || t > l.Horizon() || math.IsNaN(t) {
		return math.NaN()
	}
	if len(l.turns) == 0 {
		return 0
	}
	// Find the leg containing t: leg i runs from turnTime(i) to
	// turnTime(i+1) (with turnTime(0) = 0 at the origin start).
	// Binary search over turn times.
	n := len(l.turns)
	i := sort.Search(n, func(j int) bool { return l.turnTime(j+1) >= t })
	if i == n {
		i = n - 1
	}
	sign := 1.0 // side of turn i+1 (1-based i+1 odd -> positive)
	if (i+1)%2 == 0 {
		sign = -1
	}
	if i == 0 {
		return sign * t // first leg: straight out to +t1
	}
	// On leg i: started at turn i (distance turns[i-1] on side -sign) at
	// time turnTime(i), moving toward side sign.
	elapsed := t - l.turnTime(i)
	return -sign*l.turns[i-1] + sign*elapsed
}

// FirstVisit returns the earliest time the robot reaches the signed
// coordinate x (|x| > 0), or +Inf if it never does within the trajectory.
// The origin (x = 0) is first visited at t = 0.
func (l *Line) FirstVisit(x float64) float64 {
	if x == 0 {
		return 0
	}
	pos := x > 0
	ax := math.Abs(x)
	for i := 1; i <= len(l.turns); i++ {
		// Turn i is on the positive side iff i is odd.
		turnPositive := i%2 == 1
		if turnPositive != pos {
			continue
		}
		if l.turns[i-1] >= ax {
			// Reached during leg i-1 ... the leg ending at turn i starts at
			// the previous turn (or origin) and passes |x| on its way out at
			// time turnTime(i) - (t_i - |x|).
			return l.turnTime(i) - (l.turns[i-1] - ax)
		}
	}
	return math.Inf(1)
}

// PairVisit returns the earliest time by which the robot has visited both
// +x and -x (x > 0), or +Inf if it never does. For t_{i-1} < x <= t_i
// (using the convention t_0 = 0 on each side), this equals
// 2(t1 + ... + t_i) + x when turn i+1 is the first opposite-side turn with
// distance >= x — which in the standard monotone form simplifies to the
// paper's 2(t1+...+t_i)+x formula of Section 2.
func (l *Line) PairVisit(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	a := l.FirstVisit(x)
	b := l.FirstVisit(-x)
	return math.Max(a, b)
}

// Star is an ORC trajectory on the star S_m: a sequence of rounds, each
// going from the origin out to a turning point on one ray and back to the
// origin. Rounds are executed in order with no idling.
type Star struct {
	m      int
	rounds []Round
	prefix []float64 // prefix[i] = sum of turn distances of rounds 0..i
}

// Round is one out-and-back excursion: out to distance Turn on ray Ray.
type Round struct {
	Ray  int
	Turn float64
}

// NewStar builds a Star trajectory on m rays from the given rounds.
func NewStar(m int, rounds []Round) (*Star, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: m = %d rays", ErrBadRay, m)
	}
	prefix := make([]float64, len(rounds))
	var acc numeric.Kahan
	for i, r := range rounds {
		if r.Ray < 1 || r.Ray > m {
			return nil, fmt.Errorf("%w: round %d on ray %d of %d", ErrBadRay, i+1, r.Ray, m)
		}
		if r.Turn <= 0 || math.IsNaN(r.Turn) || math.IsInf(r.Turn, 0) {
			return nil, fmt.Errorf("%w: round %d turn %g (want positive finite)", ErrBadSequence, i+1, r.Turn)
		}
		acc.Add(r.Turn)
		prefix[i] = acc.Value()
	}
	cp := make([]Round, len(rounds))
	copy(cp, rounds)
	return &Star{m: m, rounds: cp, prefix: prefix}, nil
}

// M returns the number of rays.
func (s *Star) M() int { return s.m }

// NumRounds returns the number of rounds.
func (s *Star) NumRounds() int { return len(s.rounds) }

// RoundAt returns the i-th round (0-based).
func (s *Star) RoundAt(i int) Round { return s.rounds[i] }

// PrefixSum returns the sum of the first i round distances (i is 1-based;
// PrefixSum(0) = 0). Round i starts at time 2*PrefixSum(i-1).
func (s *Star) PrefixSum(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i > len(s.prefix) {
		i = len(s.prefix)
	}
	return s.prefix[i-1]
}

// Horizon returns the total duration 2 * sum of all round distances.
func (s *Star) Horizon() float64 { return 2 * s.PrefixSum(len(s.rounds)) }

// Position returns the robot's location at time 0 <= t <= Horizon().
// Beyond the horizon it returns the origin with Dist = NaN.
func (s *Star) Position(t float64) Point {
	if t < 0 || t > s.Horizon() || math.IsNaN(t) {
		return Point{Ray: 1, Dist: math.NaN()}
	}
	// Round i (0-based) occupies [2*PrefixSum(i), 2*PrefixSum(i+1)].
	i := sort.Search(len(s.rounds), func(j int) bool { return 2*s.PrefixSum(j+1) >= t })
	if i == len(s.rounds) {
		return Point{Ray: 1, Dist: 0}
	}
	local := t - 2*s.PrefixSum(i)
	r := s.rounds[i]
	if local <= r.Turn {
		return Point{Ray: r.Ray, Dist: local}
	}
	return Point{Ray: r.Ray, Dist: 2*r.Turn - local}
}

// FirstVisit returns the earliest time the robot reaches point p, or +Inf.
func (s *Star) FirstVisit(p Point) float64 {
	if p.Dist == 0 {
		return 0
	}
	for i, r := range s.rounds {
		if r.Ray == p.Ray && r.Turn >= p.Dist {
			return 2*s.PrefixSum(i) + p.Dist
		}
	}
	return math.Inf(1)
}

// VisitTimes returns every time the robot passes through p within the
// trajectory, in increasing order. Each round that reaches p contributes an
// outbound and (for interior points) an inbound crossing.
func (s *Star) VisitTimes(p Point) []float64 {
	if p.Dist == 0 {
		return []float64{0}
	}
	var times []float64
	for i, r := range s.rounds {
		if r.Ray != p.Ray || r.Turn < p.Dist {
			continue
		}
		start := 2 * s.PrefixSum(i)
		times = append(times, start+p.Dist)
		if r.Turn > p.Dist {
			times = append(times, start+2*r.Turn-p.Dist)
		}
	}
	return times
}

// RoundVisits returns, for each round that reaches p, the time of the
// outbound crossing in that round. In the ORC setting these are the visits
// that count as distinct coverings (the robot returns to 0 between rounds).
func (s *Star) RoundVisits(p Point) []float64 {
	if p.Dist == 0 {
		return []float64{0}
	}
	var times []float64
	for i, r := range s.rounds {
		if r.Ray == p.Ray && r.Turn >= p.Dist {
			times = append(times, 2*s.PrefixSum(i)+p.Dist)
		}
	}
	return times
}

// LineFromStar converts an S_2 star trajectory into the equivalent line
// trajectory visiting the same turning points in the same order. A star
// round on ray 1 with turn t is the line excursion +t; on ray 2 it is -t.
// The line trajectory passes through 0 between rounds exactly as the star
// does, so visit times coincide.
func LineFromStar(s *Star) (*Line, error) {
	if s.m != 2 {
		return nil, fmt.Errorf("%w: LineFromStar needs m = 2, got %d", ErrBadRay, s.m)
	}
	// A line trajectory alternates sides by construction; an ORC sequence
	// may have consecutive rounds on the same ray. Emitting the star's
	// turning points verbatim as a Line would change side parity, so this
	// conversion is only exact when rounds alternate rays starting at 1.
	turns := make([]float64, 0, len(s.rounds))
	for i, r := range s.rounds {
		wantRay := 1 + i%2
		if r.Ray != wantRay {
			return nil, fmt.Errorf("%w: LineFromStar requires alternating rays (round %d on ray %d, want %d)",
				ErrBadSequence, i+1, r.Ray, wantRay)
		}
		turns = append(turns, r.Turn)
	}
	return NewLine(turns, false)
}
