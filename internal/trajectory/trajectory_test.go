package trajectory

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func mustLine(t *testing.T, turns ...float64) *Line {
	t.Helper()
	l, err := NewLine(turns, false)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustStar(t *testing.T, m int, rounds ...Round) *Star {
	t.Helper()
	s, err := NewStar(m, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPointLineCoord(t *testing.T) {
	if c, err := (Point{Ray: 1, Dist: 3}).LineCoord(); err != nil || c != 3 {
		t.Errorf("ray1 dist3 -> %g, %v; want 3", c, err)
	}
	if c, err := (Point{Ray: 2, Dist: 3}).LineCoord(); err != nil || c != -3 {
		t.Errorf("ray2 dist3 -> %g, %v; want -3", c, err)
	}
	if _, err := (Point{Ray: 3, Dist: 1}).LineCoord(); !errors.Is(err, ErrBadRay) {
		t.Error("ray 3 should fail LineCoord")
	}
}

func TestPointFromLineRoundTrip(t *testing.T) {
	for _, x := range []float64{-5, -0.5, 0, 0.25, 7} {
		p := PointFromLine(x)
		c, err := p.LineCoord()
		if err != nil {
			t.Fatal(err)
		}
		if c != x {
			t.Errorf("round trip of %g gave %g", x, c)
		}
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{Ray: 2, Dist: 1.5}).String(); got != "r2:1.5" {
		t.Errorf("String = %q", got)
	}
}

func TestNewLineValidation(t *testing.T) {
	if _, err := NewLine([]float64{1, -2}, false); !errors.Is(err, ErrBadSequence) {
		t.Error("negative turn should fail")
	}
	if _, err := NewLine([]float64{0}, false); !errors.Is(err, ErrBadSequence) {
		t.Error("zero turn should fail")
	}
	if _, err := NewLine([]float64{1, 2, math.NaN()}, false); !errors.Is(err, ErrBadSequence) {
		t.Error("NaN turn should fail")
	}
	// Monotone enforcement: 1, 2, 0.5 has t3 < t1 on the same side.
	if _, err := NewLine([]float64{1, 2, 0.5}, true); !errors.Is(err, ErrBadSequence) {
		t.Error("non-monotone same-side turns should fail in standard form")
	}
	if _, err := NewLine([]float64{1, 2, 0.5}, false); err != nil {
		t.Error("non-monotone turns allowed outside standard form")
	}
}

func TestLineTurnsCopied(t *testing.T) {
	l := mustLine(t, 1, 2, 4)
	got := l.Turns()
	got[0] = 99
	if l.Turns()[0] != 1 {
		t.Error("Turns must return a defensive copy")
	}
	if l.NumTurns() != 3 {
		t.Errorf("NumTurns = %d, want 3", l.NumTurns())
	}
}

func TestLinePrefixSum(t *testing.T) {
	l := mustLine(t, 1, 2, 4)
	for i, want := range []float64{0, 1, 3, 7} {
		if got := l.PrefixSum(i); got != want {
			t.Errorf("PrefixSum(%d) = %g, want %g", i, got, want)
		}
	}
	if got := l.PrefixSum(10); got != 7 {
		t.Errorf("PrefixSum beyond end = %g, want 7", got)
	}
}

func TestLinePositionDoubling(t *testing.T) {
	// Classic doubling: +1, -2, +4. Spot-check the full timeline.
	l := mustLine(t, 1, 2, 4)
	tests := []struct{ time, want float64 }{
		{0, 0},
		{0.5, 0.5},
		{1, 1},  // at +t1
		{2, 0},  // back through origin
		{4, -2}, // at -t2
		{6, 0},  // origin again
		{10, 4}, // at +t3 (horizon)
	}
	for _, tt := range tests {
		if got := l.Position(tt.time); !numeric.EqualWithin(got, tt.want, 1e-12) {
			t.Errorf("Position(%g) = %g, want %g", tt.time, got, tt.want)
		}
	}
	if !math.IsNaN(l.Position(10.5)) {
		t.Error("Position beyond horizon should be NaN")
	}
	if !math.IsNaN(l.Position(-1)) {
		t.Error("Position at negative time should be NaN")
	}
}

func TestLineHorizon(t *testing.T) {
	l := mustLine(t, 1, 2, 4)
	// 1 + (1+2) + (2+4) = 10.
	if got := l.Horizon(); got != 10 {
		t.Errorf("Horizon = %g, want 10", got)
	}
	empty, err := NewLine(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Horizon() != 0 {
		t.Error("empty trajectory horizon should be 0")
	}
	if empty.Position(0) != 0 {
		t.Error("empty trajectory sits at the origin")
	}
}

func TestLineFirstVisit(t *testing.T) {
	l := mustLine(t, 1, 2, 4)
	tests := []struct{ x, want float64 }{
		{0.5, 0.5},        // outbound on leg 1
		{1, 1},            // the first turn itself
		{-1, 3},           // reached on leg to -2 at time 2 (origin) + 1
		{-2, 4},           // the second turn
		{3, 9},            // on leg to +4: turnTime(3)=10, 10-(4-3)=9
		{-3, math.Inf(1)}, // never reached
		{5, math.Inf(1)},  // never reached
	}
	for _, tt := range tests {
		if got := l.FirstVisit(tt.x); !numeric.EqualWithin(got, tt.want, 1e-12) {
			t.Errorf("FirstVisit(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
	if l.FirstVisit(0) != 0 {
		t.Error("origin visited at time 0")
	}
}

func TestLinePairVisitClosedForm(t *testing.T) {
	// The paper's formula: for t_{i-1} < x <= t_i (standard monotone form),
	// both +x and -x are visited by exactly 2(t1+...+t_i) + x.
	l := mustLine(t, 1, 2, 4, 8, 16)
	tests := []struct {
		x float64
		i int
	}{
		{0.5, 1}, {1, 1}, {1.5, 2}, {2, 2}, {3, 3}, {4, 3},
	}
	for _, tt := range tests {
		want := 2*l.PrefixSum(tt.i) + tt.x
		if got := l.PairVisit(tt.x); !numeric.EqualWithin(got, want, 1e-12) {
			t.Errorf("PairVisit(%g) = %g, want 2*S_%d + x = %g", tt.x, got, tt.i, want)
		}
	}
	if !math.IsInf(l.PairVisit(20), 1) {
		t.Error("PairVisit beyond coverage should be +Inf")
	}
	if !math.IsNaN(l.PairVisit(-1)) {
		t.Error("PairVisit of non-positive x should be NaN")
	}
}

func TestQuickLineUnitSpeed(t *testing.T) {
	// Property: |Position(t2) - Position(t1)| <= |t2 - t1| (unit speed,
	// continuity) for random trajectories and times.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		turns := make([]float64, n)
		for i := range turns {
			turns[i] = 0.1 + rng.Float64()*10
		}
		l, err := NewLine(turns, false)
		if err != nil {
			return false
		}
		h := l.Horizon()
		t1 := rng.Float64() * h
		t2 := rng.Float64() * h
		p1, p2 := l.Position(t1), l.Position(t2)
		return math.Abs(p2-p1) <= math.Abs(t2-t1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickLineFirstVisitConsistent(t *testing.T) {
	// Property: Position(FirstVisit(x)) == x whenever the visit is finite.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		turns := make([]float64, n)
		for i := range turns {
			turns[i] = 0.5 + rng.Float64()*10
		}
		l, err := NewLine(turns, false)
		if err != nil {
			return false
		}
		x := (rng.Float64()*2 - 1) * 12
		if x == 0 {
			return true
		}
		ft := l.FirstVisit(x)
		if math.IsInf(ft, 1) {
			return true
		}
		return numeric.EqualWithin(l.Position(ft), x, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestNewStarValidation(t *testing.T) {
	if _, err := NewStar(0, nil); !errors.Is(err, ErrBadRay) {
		t.Error("m = 0 should fail")
	}
	if _, err := NewStar(2, []Round{{Ray: 3, Turn: 1}}); !errors.Is(err, ErrBadRay) {
		t.Error("ray out of range should fail")
	}
	if _, err := NewStar(2, []Round{{Ray: 1, Turn: 0}}); !errors.Is(err, ErrBadSequence) {
		t.Error("zero turn should fail")
	}
	if _, err := NewStar(2, []Round{{Ray: 1, Turn: math.Inf(1)}}); !errors.Is(err, ErrBadSequence) {
		t.Error("infinite turn should fail")
	}
}

func TestStarAccessors(t *testing.T) {
	s := mustStar(t, 3, Round{Ray: 1, Turn: 1}, Round{Ray: 2, Turn: 2}, Round{Ray: 3, Turn: 4})
	if s.M() != 3 || s.NumRounds() != 3 {
		t.Error("M/NumRounds misbehave")
	}
	if s.RoundAt(1) != (Round{Ray: 2, Turn: 2}) {
		t.Error("RoundAt misbehaves")
	}
	if s.PrefixSum(2) != 3 {
		t.Errorf("PrefixSum(2) = %g, want 3", s.PrefixSum(2))
	}
	if s.Horizon() != 14 {
		t.Errorf("Horizon = %g, want 14", s.Horizon())
	}
}

func TestStarPosition(t *testing.T) {
	s := mustStar(t, 3, Round{Ray: 1, Turn: 1}, Round{Ray: 2, Turn: 2})
	tests := []struct {
		time float64
		want Point
	}{
		{0, Point{Ray: 1, Dist: 0}},
		{0.5, Point{Ray: 1, Dist: 0.5}},
		{1, Point{Ray: 1, Dist: 1}},
		{1.5, Point{Ray: 1, Dist: 0.5}},
		{2, Point{Ray: 1, Dist: 0}},
		{3, Point{Ray: 2, Dist: 1}},
		{4, Point{Ray: 2, Dist: 2}},
		{6, Point{Ray: 2, Dist: 0}},
	}
	for _, tt := range tests {
		got := s.Position(tt.time)
		if got.Dist == 0 {
			// Origin: ray identity immaterial.
			if tt.want.Dist != 0 {
				t.Errorf("Position(%g) = %v, want %v", tt.time, got, tt.want)
			}
			continue
		}
		if got.Ray != tt.want.Ray || !numeric.EqualWithin(got.Dist, tt.want.Dist, 1e-12) {
			t.Errorf("Position(%g) = %v, want %v", tt.time, got, tt.want)
		}
	}
	if !math.IsNaN(s.Position(100).Dist) {
		t.Error("Position beyond horizon should be NaN")
	}
}

func TestStarFirstVisitClosedForm(t *testing.T) {
	// Round i reaches x <= t_i on its ray at time 2(t1+...+t_{i-1}) + x.
	s := mustStar(t, 2,
		Round{Ray: 1, Turn: 1},
		Round{Ray: 2, Turn: 2},
		Round{Ray: 1, Turn: 4},
	)
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{Ray: 1, Dist: 0.5}, 0.5},
		{Point{Ray: 2, Dist: 1.5}, 2*1 + 1.5},
		{Point{Ray: 1, Dist: 3}, 2*3 + 3},
		{Point{Ray: 2, Dist: 3}, math.Inf(1)},
	}
	for _, tt := range tests {
		if got := s.FirstVisit(tt.p); !numeric.EqualWithin(got, tt.want, 1e-12) {
			t.Errorf("FirstVisit(%v) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if s.FirstVisit(Point{Ray: 1, Dist: 0}) != 0 {
		t.Error("origin visited at 0")
	}
}

func TestStarVisitTimes(t *testing.T) {
	s := mustStar(t, 2, Round{Ray: 1, Turn: 2}, Round{Ray: 1, Turn: 3})
	// Point r1:1 is crossed outbound at 1, inbound at 3; then in round 2
	// (starting at time 4) outbound at 5, inbound at 9.
	want := []float64{1, 3, 5, 9}
	got := s.VisitTimes(Point{Ray: 1, Dist: 1})
	if len(got) != len(want) {
		t.Fatalf("VisitTimes = %v, want %v", got, want)
	}
	for i := range want {
		if !numeric.EqualWithin(got[i], want[i], 1e-12) {
			t.Errorf("VisitTimes[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// The turning point itself is crossed once per round.
	turn := s.VisitTimes(Point{Ray: 1, Dist: 2})
	if len(turn) != 3 { // round1 touches exactly at the turn; round2 out+in
		t.Errorf("VisitTimes at turning point = %v, want 3 crossings", turn)
	}
}

func TestStarRoundVisits(t *testing.T) {
	s := mustStar(t, 2, Round{Ray: 1, Turn: 2}, Round{Ray: 1, Turn: 3}, Round{Ray: 2, Turn: 1})
	got := s.RoundVisits(Point{Ray: 1, Dist: 1})
	want := []float64{1, 5}
	if len(got) != len(want) {
		t.Fatalf("RoundVisits = %v, want %v", got, want)
	}
	for i := range want {
		if !numeric.EqualWithin(got[i], want[i], 1e-12) {
			t.Errorf("RoundVisits[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestQuickStarUnitSpeed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(4)
		n := 1 + rng.Intn(8)
		rounds := make([]Round, n)
		for i := range rounds {
			rounds[i] = Round{Ray: 1 + rng.Intn(m), Turn: 0.1 + rng.Float64()*10}
		}
		s, err := NewStar(m, rounds)
		if err != nil {
			return false
		}
		h := s.Horizon()
		t1 := rng.Float64() * h
		t2 := rng.Float64() * h
		p1, p2 := s.Position(t1), s.Position(t2)
		// Distance on the star: same ray -> |d1-d2|; different rays ->
		// through the origin d1+d2.
		var dist float64
		if p1.Ray == p2.Ray || p1.Dist == 0 || p2.Dist == 0 {
			dist = math.Abs(p1.Dist - p2.Dist)
		} else {
			dist = p1.Dist + p2.Dist
		}
		return dist <= math.Abs(t2-t1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickStarFirstVisitMatchesVisitTimes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		n := 1 + rng.Intn(6)
		rounds := make([]Round, n)
		for i := range rounds {
			rounds[i] = Round{Ray: 1 + rng.Intn(m), Turn: 0.5 + rng.Float64()*8}
		}
		s, err := NewStar(m, rounds)
		if err != nil {
			return false
		}
		p := Point{Ray: 1 + rng.Intn(m), Dist: rng.Float64() * 9}
		if p.Dist == 0 {
			return true
		}
		first := s.FirstVisit(p)
		all := s.VisitTimes(p)
		if math.IsInf(first, 1) {
			return len(all) == 0
		}
		return len(all) > 0 && numeric.EqualWithin(all[0], first, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLineFromStar(t *testing.T) {
	s := mustStar(t, 2,
		Round{Ray: 1, Turn: 1},
		Round{Ray: 2, Turn: 2},
		Round{Ray: 1, Turn: 4},
	)
	l, err := LineFromStar(s)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumTurns() != 3 {
		t.Fatalf("NumTurns = %d, want 3", l.NumTurns())
	}
	// Visit times on the line are never later than on the star (the line
	// robot does not have to return to 0 before switching sides, but in
	// this alternating form it passes 0 anyway, so they are equal).
	for _, x := range []float64{0.5, 1, -1.5, 3} {
		sv := s.FirstVisit(PointFromLine(x))
		lv := l.FirstVisit(x)
		if !numeric.EqualWithin(sv, lv, 1e-12) {
			t.Errorf("visit of %g: star %g, line %g", x, sv, lv)
		}
	}
}

func TestLineFromStarErrors(t *testing.T) {
	s3 := mustStar(t, 3, Round{Ray: 1, Turn: 1})
	if _, err := LineFromStar(s3); !errors.Is(err, ErrBadRay) {
		t.Error("LineFromStar on m=3 should fail")
	}
	same := mustStar(t, 2, Round{Ray: 1, Turn: 1}, Round{Ray: 1, Turn: 2})
	if _, err := LineFromStar(same); !errors.Is(err, ErrBadSequence) {
		t.Error("LineFromStar on non-alternating rounds should fail")
	}
}
