package trajectory

import (
	"errors"
	"math"
	"testing"
)

func TestNewPlanarValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []Vec
	}{
		{"too few", []Vec{{0, 0}}},
		{"empty", nil},
		{"nan", []Vec{{0, 0}, {math.NaN(), 1}}},
		{"inf", []Vec{{0, 0}, {math.Inf(1), 0}}},
		{"zero segment", []Vec{{0, 0}, {1, 1}, {1, 1}}},
	}
	for _, tc := range cases {
		if _, err := NewPlanar(tc.pts); !errors.Is(err, ErrBadSequence) {
			t.Errorf("%s: NewPlanar err = %v, want ErrBadSequence", tc.name, err)
		}
	}
	if _, err := NewPlanar([]Vec{{0, 0}, {3, 4}, {3, 0}}); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
}

func TestPlanarHorizonAndPosition(t *testing.T) {
	p, err := NewPlanar([]Vec{{0, 0}, {3, 4}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Horizon(); math.Abs(got-9) > 1e-12 {
		t.Fatalf("Horizon = %g, want 9", got)
	}
	if got := p.Position(0); got != (Vec{0, 0}) {
		t.Errorf("Position(0) = %v, want origin", got)
	}
	if got := p.Position(5); math.Abs(got.X-3) > 1e-12 || math.Abs(got.Y-4) > 1e-12 {
		t.Errorf("Position(5) = %v, want (3,4)", got)
	}
	if got := p.Position(7); math.Abs(got.X-3) > 1e-12 || math.Abs(got.Y-2) > 1e-12 {
		t.Errorf("Position(7) = %v, want (3,2)", got)
	}
	for _, bad := range []float64{-1, 9.0001, math.NaN()} {
		got := p.Position(bad)
		if !math.IsNaN(got.X) || !math.IsNaN(got.Y) {
			t.Errorf("Position(%g) = %v, want NaN vec", bad, got)
		}
	}
}

// TestPlanarUnitSpeed checks that consecutive position samples move at
// (at most) unit speed, the defining property of the parametrization.
func TestPlanarUnitSpeed(t *testing.T) {
	p, err := NewPlanar([]Vec{{0, 0}, {2, 1}, {-1, 3}, {0, 0}, {4, -2}})
	if err != nil {
		t.Fatal(err)
	}
	h := p.Horizon()
	const n = 400
	prev := p.Position(0)
	for i := 1; i <= n; i++ {
		ti := h * float64(i) / n
		cur := p.Position(ti)
		dt := h / n
		if d := cur.Sub(prev).Norm(); d > dt*(1+1e-9) {
			t.Fatalf("speed %g > 1 between samples %d-1 and %d", d/dt, i, i)
		}
		prev = cur
	}
}

func TestPlanarFirstHitLine(t *testing.T) {
	// Path along the x-axis out to 5, back to -3.
	p, err := NewPlanar([]Vec{{0, 0}, {5, 0}, {-3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	u := Vec{1, 0}
	if got := p.FirstHitLine(u, 2); got != 2 {
		t.Errorf("hit x=2 at %g, want 2", got)
	}
	if got := p.FirstHitLine(u, -2); got != 12 {
		t.Errorf("hit x=-2 at %g, want 12 (5 out, then 7 back past the origin)", got)
	}
	if got := p.FirstHitLine(u, 6); !math.IsInf(got, 1) {
		t.Errorf("hit x=6 at %g, want +Inf", got)
	}
	if got := p.FirstHitLine(u, 0); got != 0 {
		t.Errorf("hit x=0 at %g, want 0 (start on the line)", got)
	}
	// Degenerate queries answer NaN, never panic.
	for _, bad := range []struct {
		n Vec
		c float64
	}{
		{Vec{0, 0}, 1},
		{Vec{math.NaN(), 1}, 1},
		{Vec{1, 0}, math.Inf(1)},
		{Vec{1, 0}, math.NaN()},
	} {
		if got := p.FirstHitLine(bad.n, bad.c); !math.IsNaN(got) {
			t.Errorf("FirstHitLine(%v, %g) = %g, want NaN", bad.n, bad.c, got)
		}
	}
	// A diagonal ray hits the vertical line x = d at time d*sec(theta).
	ray, err := PlanarRay(math.Pi/3, 100)
	if err != nil {
		t.Fatal(err)
	}
	got := ray.FirstHitLine(Vec{1, 0}, 3)
	want := 3 / math.Cos(math.Pi/3)
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("diagonal hit at %g, want %g", got, want)
	}
	// Heading away from the line: never hits.
	if got := ray.FirstHitLine(Vec{1, 0}, -1); !math.IsInf(got, 1) {
		t.Errorf("back-side hit at %g, want +Inf", got)
	}
}

// TestPlanarSpecializesStar pins the 1D-specialization guarantee: an
// S_2 star trajectory embedded on the x-axis has, for every point the
// star visits, a first line-crossing time that is bit-identical
// (exact float equality, not approximate) to Star.FirstVisit. This is
// what keeps the planar refactor from perturbing any line-scenario
// answer: the 1D stack is the axis-embedded special case, not a
// parallel implementation.
func TestPlanarSpecializesStar(t *testing.T) {
	rounds := []Round{
		{Ray: 1, Turn: 1}, {Ray: 2, Turn: 1.3}, {Ray: 1, Turn: 2.17},
		{Ray: 2, Turn: 3.7}, {Ray: 1, Turn: 5.01}, {Ray: 2, Turn: 9.9},
	}
	s, err := NewStar(2, rounds)
	if err != nil {
		t.Fatal(err)
	}
	dirs := StarDirections(2)
	if dirs[0] != (Vec{1, 0}) || dirs[1] != (Vec{-1, 0}) {
		t.Fatalf("StarDirections(2) = %v, want exact axis vectors", dirs)
	}
	p, err := PlanarFromStar(s, dirs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Horizon() != s.Horizon() {
		t.Fatalf("embedded horizon %g != star horizon %g", p.Horizon(), s.Horizon())
	}
	for ray := 1; ray <= 2; ray++ {
		u := dirs[ray-1]
		for _, x := range []float64{0.25, 0.5, 1, 1.25, 1.3, 2, 2.17, 3, 3.7, 4.4, 5.01, 7, 9.9} {
			want := s.FirstVisit(Point{Ray: ray, Dist: x})
			got := p.FirstHitLine(u, x)
			if math.IsInf(want, 1) {
				if !math.IsInf(got, 1) {
					t.Errorf("ray %d x=%g: planar hit %g, star never visits", ray, x, got)
				}
				continue
			}
			if got != want {
				t.Errorf("ray %d x=%g: planar hit %v != star visit %v (must be bit-identical)",
					ray, x, got, want)
			}
		}
	}
}

// TestPlanarFromStarWideStar exercises the m > 2 embedding: the
// embedded path reaches the halfplane {q . u_r >= x} no later than the
// star visits the point at distance x on ray r (a halfplane can be
// entered from a neighboring ray), and the embedded position at the
// star's visit time is the embedded point itself.
func TestPlanarFromStarWideStar(t *testing.T) {
	for _, m := range []int{3, 5} {
		rounds := make([]Round, 0, 3*m)
		turn := 1.0
		for rep := 0; rep < 3; rep++ {
			for ray := 1; ray <= m; ray++ {
				rounds = append(rounds, Round{Ray: ray, Turn: turn})
				turn *= 1.37
			}
		}
		s, err := NewStar(m, rounds)
		if err != nil {
			t.Fatal(err)
		}
		dirs := StarDirections(m)
		p, err := PlanarFromStar(s, dirs)
		if err != nil {
			t.Fatal(err)
		}
		for ray := 1; ray <= m; ray++ {
			for _, x := range []float64{0.5, 1, 2, 4} {
				visit := s.FirstVisit(Point{Ray: ray, Dist: x})
				if math.IsInf(visit, 1) {
					continue
				}
				hit := p.FirstHitLine(dirs[ray-1], x)
				if hit > visit {
					t.Errorf("m=%d ray %d x=%g: halfplane hit %g after point visit %g",
						m, ray, x, hit, visit)
				}
				want := dirs[ray-1].Scale(x)
				got := p.Position(visit)
				if got.Sub(want).Norm() > 1e-9*(1+x) {
					t.Errorf("m=%d ray %d x=%g: position at visit = %v, want %v",
						m, ray, x, got, want)
				}
			}
		}
	}
}

func TestPlanarFromStarValidation(t *testing.T) {
	s, err := NewStar(3, []Round{{Ray: 1, Turn: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanarFromStar(s, StarDirections(2)); !errors.Is(err, ErrBadRay) {
		t.Errorf("direction count mismatch: err = %v, want ErrBadRay", err)
	}
	if _, err := PlanarFromStar(s, []Vec{{1, 0}, {0, 1}, {0, 0}}); !errors.Is(err, ErrBadSequence) {
		t.Errorf("degenerate direction: err = %v, want ErrBadSequence", err)
	}
}

func TestPlanarRayValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := PlanarRay(1, bad); !errors.Is(err, ErrBadSequence) {
			t.Errorf("PlanarRay length %g: err = %v, want ErrBadSequence", bad, err)
		}
	}
	r, err := PlanarRay(math.Pi/2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Horizon() != 7 {
		t.Errorf("ray horizon %g, want exactly 7", r.Horizon())
	}
	if tip := r.PointAt(1); tip != (Vec{0, 7}) {
		t.Errorf("ray tip %v, want exact (0,7)", tip)
	}
}

// TestLineCoordWideStarRegression is the m > 2 audit of satellite (a):
// Point.LineCoord is a strictly two-ray conversion, and the planar
// refactor keeps it that way. An audit of the repository (grep for
// LineCoord) found no call site outside this package's own tests, so
// no caller assumes it succeeds on wider stars; this test pins the
// contract that rays beyond 2 — legal Points on S_m for m > 2 — are
// rejected with ErrBadRay rather than silently mapped to a sign.
func TestLineCoordWideStarRegression(t *testing.T) {
	s, err := NewStar(3, []Round{{Ray: 3, Turn: 2}})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Position(1) // mid-outbound on ray 3: a legitimate m=3 point
	if p.Ray != 3 {
		t.Fatalf("position ray = %d, want 3", p.Ray)
	}
	if _, err := p.LineCoord(); !errors.Is(err, ErrBadRay) {
		t.Errorf("LineCoord on ray 3: err = %v, want ErrBadRay", err)
	}
	for ray := 3; ray <= 6; ray++ {
		if _, err := (Point{Ray: ray, Dist: 1}).LineCoord(); !errors.Is(err, ErrBadRay) {
			t.Errorf("LineCoord on ray %d: err = %v, want ErrBadRay", ray, err)
		}
	}
	// The two-ray cases stay exact.
	for _, tc := range []struct {
		p    Point
		want float64
	}{
		{Point{Ray: 1, Dist: 2.5}, 2.5},
		{Point{Ray: 2, Dist: 2.5}, -2.5},
	} {
		got, err := tc.p.LineCoord()
		if err != nil || got != tc.want {
			t.Errorf("LineCoord(%v) = %g, %v; want %g, nil", tc.p, got, err, tc.want)
		}
	}
}
