package program

import (
	"errors"
	"strings"
	"testing"
)

// fuzzSeeds are the corpus starting points: every statement form, every
// builtin, the shipped cyclic script, and inputs that probe the limits
// and past compile errors.
var fuzzSeeds = []string{
	doubling,
	"q := m * (f + 1)\nstop := log(horizon)/log(alpha) + (q + k*m)\nbase := m * (r + 1)\nl := 1 - 2*m\ne := k*l + base\nstep := pow(alpha, k)\nturn := pow(alpha, e)\nfor e <= stop {\n\temit(mod(l-1, m)+1, turn)\n\tturn = turn * step\n\tl = l + 1\n\te = k*l + base\n}\n",
	"emit(1, 2)",
	"if r > 0 {\n\temit(1, 2)\n} else {\n\temit(1, 3)\n}",
	"for i := 0; i < 4; i = i + 1 {\n\temit(1, i + 1.5)\n}",
	"x := 1.0\nfor {\n\tx = x * 2\n\tif x > horizon {\n\t\tbreak\n\t}\n\temit(1, x)\n}",
	"a := min(max(1, 2), abs(0-3)) + floor(2.5)*ceil(0.5) + sqrt(4) + exp(0)\nemit(1, a)",
	"for {\n}",
	"a := 5 % 2",
	"a := 1\na := 2",
	"return",
	"x := 0\nx += 1\nx -= 2\nx *= 3\nx /= 4\nx++\nx--\nemit(1, abs(x)+1)",
	"emit(0/0, 1/0)",
	"{",
	"emit(1, 1e308*10)",
}

// FuzzCompile throws arbitrary byte strings at the parser/compiler and,
// when one compiles, at the evaluator. The properties under fuzz:
//
//   - Compile never panics and never hangs: every input either yields a
//     program or an error wrapping ErrCompile.
//   - A compiled program's hash is deterministic (recompiling the same
//     source reproduces it) and parseable as a fixed-width hex string.
//   - Evaluating a compiled program against a small instance terminates
//     within the gas budget and either returns rounds or a sandbox
//     error — arbitrary accepted scripts cannot wedge the VM.
//
// CI runs this for a short -fuzztime as a smoke gate; `go test -fuzz
// FuzzCompile ./internal/strategy/program` explores further locally.
func FuzzCompile(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			if !errors.Is(err, ErrCompile) {
				t.Fatalf("compile error does not wrap ErrCompile: %v", err)
			}
			return
		}
		if len(p.Hash()) != 64 || strings.Trim(p.Hash(), "0123456789abcdef") != "" {
			t.Fatalf("hash %q is not 64 hex chars", p.Hash())
		}
		again, err := Compile(src)
		if err != nil {
			t.Fatalf("recompile of accepted source failed: %v", err)
		}
		if again.Hash() != p.Hash() {
			t.Fatalf("hash not deterministic: %s vs %s", p.Hash(), again.Hash())
		}
		inst, err := p.NewAlpha(2, 2, 1, 1.5)
		if err != nil {
			return // instantiation may reject params relative to the program
		}
		rounds, err := inst.Rounds(0, 50)
		if err != nil {
			// Any sandbox error is fine; a non-sandbox error is not.
			if !errors.Is(err, ErrEval) && !errors.Is(err, ErrGasExhausted) &&
				!errors.Is(err, ErrTooManyRounds) && !errors.Is(err, ErrBadParams) {
				t.Fatalf("evaluation error outside the sandbox taxonomy: %v", err)
			}
			return
		}
		for i, rd := range rounds {
			if rd.Ray < 1 || rd.Ray > 2 {
				t.Fatalf("round %d: ray %d escaped 1..m", i, rd.Ray)
			}
			if !(rd.Turn > 0) {
				t.Fatalf("round %d: non-positive turn %g survived emit validation", i, rd.Turn)
			}
		}
	})
}
