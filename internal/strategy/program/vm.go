package program

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/trajectory"
)

// vm is the per-run evaluation state. VMs are pooled so steady-state
// round generation allocates nothing; all state is reset on checkout.
type vm struct {
	locals []float64
	gas    int64
	m      int
	dst    []trajectory.Round
	emits  int
}

var vmPool = sync.Pool{New: func() any { return new(vm) }}

func getVM(locals int) *vm {
	v := vmPool.Get().(*vm)
	if cap(v.locals) < locals {
		v.locals = make([]float64, locals)
	} else {
		v.locals = v.locals[:locals]
		for i := range v.locals {
			v.locals[i] = 0
		}
	}
	v.gas = DefaultGas
	v.emits = 0
	return v
}

func putVM(v *vm) {
	v.dst = nil // do not retain caller round buffers across runs
	vmPool.Put(v)
}

// signal threads break/continue/return through nested statement lists.
type signal uint8

const (
	sigNone signal = iota
	sigBreak
	sigContinue
	sigReturn
)

func (v *vm) charge() error {
	v.gas--
	if v.gas < 0 {
		return fmt.Errorf("%w: limit %d", ErrGasExhausted, int64(DefaultGas))
	}
	return nil
}

func (v *vm) execStmts(list []stmt) (signal, error) {
	for i := range list {
		sig, err := v.execStmt(&list[i])
		if err != nil || sig != sigNone {
			return sig, err
		}
	}
	return sigNone, nil
}

func (v *vm) execStmt(s *stmt) (signal, error) {
	if err := v.charge(); err != nil {
		return sigNone, err
	}
	switch s.kind {
	case stAssign:
		x, err := v.evalExpr(s.x)
		if err != nil {
			return sigNone, err
		}
		v.locals[s.slot] = x
		return sigNone, nil
	case stIf:
		c, err := v.evalExpr(s.cond)
		if err != nil {
			return sigNone, err
		}
		if c != 0 {
			return v.execStmts(s.body)
		}
		return v.execStmts(s.els)
	case stFor:
		if s.init != nil {
			if _, err := v.execStmt(s.init); err != nil {
				return sigNone, err
			}
		}
		for {
			// Charge per iteration so even an empty for {} burns gas.
			if err := v.charge(); err != nil {
				return sigNone, err
			}
			if s.cond != nil {
				c, err := v.evalExpr(s.cond)
				if err != nil {
					return sigNone, err
				}
				if c == 0 {
					break
				}
			}
			sig, err := v.execStmts(s.body)
			if err != nil {
				return sigNone, err
			}
			if sig == sigBreak {
				break
			}
			if sig == sigReturn {
				return sigReturn, nil
			}
			if s.post != nil {
				if _, err := v.execStmt(s.post); err != nil {
					return sigNone, err
				}
			}
		}
		return sigNone, nil
	case stBreak:
		return sigBreak, nil
	case stContinue:
		return sigContinue, nil
	case stReturn:
		return sigReturn, nil
	case stEmit:
		ray, err := v.evalExpr(s.x)
		if err != nil {
			return sigNone, err
		}
		turn, err := v.evalExpr(s.y)
		if err != nil {
			return sigNone, err
		}
		return sigNone, v.emit(ray, turn)
	}
	return sigNone, fmt.Errorf("%w: unknown statement kind %d", ErrEval, s.kind)
}

func (v *vm) emit(ray, turn float64) error {
	if v.emits >= MaxRounds {
		return fmt.Errorf("%w: limit %d rounds per robot", ErrTooManyRounds, MaxRounds)
	}
	ir := int(ray)
	if float64(ir) != ray || ir < 1 || ir > v.m {
		return fmt.Errorf("%w: emit ray %g is not an integer in 1..%d", ErrEval, ray, v.m)
	}
	if math.IsNaN(turn) || math.IsInf(turn, 0) || turn <= 0 {
		return fmt.Errorf("%w: emit turn %g must be a positive finite value", ErrEval, turn)
	}
	v.dst = append(v.dst, trajectory.Round{Ray: ir, Turn: turn})
	v.emits++
	return nil
}

func (v *vm) evalExpr(e *expr) (float64, error) {
	if err := v.charge(); err != nil {
		return 0, err
	}
	switch e.op {
	case opConst:
		return e.val, nil
	case opVar:
		return v.locals[e.slot], nil
	case opNeg:
		x, err := v.evalExpr(&e.args[0])
		if err != nil {
			return 0, err
		}
		return -x, nil
	case opNot:
		x, err := v.evalExpr(&e.args[0])
		if err != nil {
			return 0, err
		}
		return b2f(x == 0), nil
	case opAnd:
		x, err := v.evalExpr(&e.args[0])
		if err != nil {
			return 0, err
		}
		if x == 0 {
			return 0, nil
		}
		y, err := v.evalExpr(&e.args[1])
		if err != nil {
			return 0, err
		}
		return b2f(y != 0), nil
	case opOr:
		x, err := v.evalExpr(&e.args[0])
		if err != nil {
			return 0, err
		}
		if x != 0 {
			return 1, nil
		}
		y, err := v.evalExpr(&e.args[1])
		if err != nil {
			return 0, err
		}
		return b2f(y != 0), nil
	case opCall:
		spec := &builtins[e.fn]
		x, err := v.evalExpr(&e.args[0])
		if err != nil {
			return 0, err
		}
		if spec.arity == 1 {
			return spec.fn1(x), nil
		}
		y, err := v.evalExpr(&e.args[1])
		if err != nil {
			return 0, err
		}
		return spec.fn2(x, y), nil
	}
	// Remaining ops are binary.
	x, err := v.evalExpr(&e.args[0])
	if err != nil {
		return 0, err
	}
	y, err := v.evalExpr(&e.args[1])
	if err != nil {
		return 0, err
	}
	switch e.op {
	case opAdd:
		return x + y, nil
	case opSub:
		return x - y, nil
	case opMul:
		return x * y, nil
	case opDiv:
		return x / y, nil
	case opLT:
		return b2f(x < y), nil
	case opLE:
		return b2f(x <= y), nil
	case opGT:
		return b2f(x > y), nil
	case opGE:
		return b2f(x >= y), nil
	case opEQ:
		return b2f(x == y), nil
	case opNE:
		return b2f(x != y), nil
	}
	return 0, fmt.Errorf("%w: unknown op %d", ErrEval, e.op)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
