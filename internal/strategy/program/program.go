// Package program compiles sandboxed strategy scripts into a small
// content-addressed IR and evaluates them as search strategies.
//
// A script is the body of a Go function (parsed with go/parser, so the
// surface syntax is a strict subset of Go) that generates the excursion
// rounds of one robot by calling emit(ray, turn). The script sees six
// read-only inputs bound as local variables:
//
//	r       0-based robot index (0 <= r < k)
//	m       number of rays of the star S_m
//	k       number of robots
//	f       number of faults the adversary may invest
//	alpha   the exponential base alpha*(q, k) for q = m(f+1)
//	horizon generate rounds with turn points up to (roughly) this distance
//
// All values are float64. The only effects a script can have are the
// rounds it emits; there is no FFI beyond a whitelisted math surface
// (pow, log, exp, sqrt, abs, floor, ceil, min, max, mod). Execution is
// gas-metered: every IR node evaluated costs one unit of gas, and a
// script that exhausts its gas budget is stopped with ErrGasExhausted.
// Emitted rounds are capped at MaxRounds per robot, matching the
// strategy package's guard.
//
// Compiling a script produces a Program whose Hash is a SHA-256 over the
// canonical rendering of the IR. The hash is insensitive to whitespace,
// comments, and variable names, and it is the single cache fingerprint
// used by the engine, solver memos, and snapshots.
package program

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/trajectory"
)

// Errors returned by the compiler and the evaluator.
var (
	// ErrCompile is returned for scripts that fail to parse or use
	// constructs outside the sandboxed subset.
	ErrCompile = errors.New("program: compile error")
	// ErrGasExhausted is returned when a script runs past its gas
	// budget (an infinite loop or an excessively expensive program).
	ErrGasExhausted = errors.New("program: gas budget exhausted")
	// ErrTooManyRounds is returned when a script emits more than
	// MaxRounds rounds for a single robot.
	ErrTooManyRounds = errors.New("program: too many rounds")
	// ErrEval is returned for runtime errors in an otherwise
	// well-formed script, such as emitting an invalid ray or a
	// non-positive turn point.
	ErrEval = errors.New("program: evaluation error")
	// ErrBadParams is returned for invalid instantiation parameters.
	ErrBadParams = errors.New("program: invalid parameters")
)

// Sandbox limits. They are deliberately generous for real strategies and
// deliberately fatal for runaway ones.
const (
	// MaxSourceBytes caps the size of a script source.
	MaxSourceBytes = 64 << 10
	// MaxProgramNodes caps the number of IR nodes in a compiled
	// program.
	MaxProgramNodes = 4096
	// MaxDepth caps statement/expression nesting.
	MaxDepth = 64
	// MaxRounds caps the rounds emitted for a single robot, matching
	// the strategy package's maxRounds guard.
	MaxRounds = 1 << 20
	// DefaultGas is the gas budget for one robot's round generation.
	// Every IR node evaluated costs one unit. Real strategies emit a
	// few dozen rounds per robot and spend a few hundred units; the
	// budget leaves headroom for MaxRounds emissions from a loop of
	// moderate cost, while an infinite loop burns through it in a few
	// hundred milliseconds — well inside a request budget.
	DefaultGas = 64 << 20
)

// hashPrefix versions the canonical rendering fed to SHA-256. Bump it if
// the IR rendering ever changes meaning.
const hashPrefix = "strategy-program/v1\n"

// Input slots bound before user locals.
const (
	slotR = iota
	slotM
	slotK
	slotF
	slotAlpha
	slotHorizon
	numInputSlots
)

var inputNames = [numInputSlots]string{"r", "m", "k", "f", "alpha", "horizon"}

// Program is a compiled, immutable strategy script. It is safe for
// concurrent use; per-run state lives in pooled VMs.
type Program struct {
	source string
	body   []stmt
	locals int // total slots including inputs
	nodes  int
	hash   string
}

// Source returns the original script source.
func (p *Program) Source() string { return p.source }

// Hash returns the hex SHA-256 content hash of the canonical IR. Two
// scripts that differ only in whitespace, comments, or variable names
// share a hash.
func (p *Program) Hash() string { return p.hash }

// Nodes reports the number of IR nodes in the program.
func (p *Program) Nodes() int { return p.nodes }

func (p *Program) computeHash() {
	var b strings.Builder
	b.WriteString(hashPrefix)
	renderStmts(&b, p.body)
	sum := sha256.Sum256([]byte(b.String()))
	p.hash = hex.EncodeToString(sum[:])
}

// New instantiates the program as a strategy for k robots on S_m against
// f faults, with alpha = alpha*(m(f+1), k), the optimal base of
// Theorem 1. It requires the search regime k < m(f+1) (otherwise no
// finite base exists); use NewAlpha to supply an explicit base.
func (p *Program) New(m, k, f int) (*Instance, error) {
	regime, err := bounds.Classify(m, k, f)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	if regime != bounds.RegimeSearch {
		return nil, fmt.Errorf("%w: m=%d k=%d f=%d is in the %v regime, need search (f < k < m(f+1))",
			ErrBadParams, m, k, f, regime)
	}
	alpha, err := bounds.OptimalAlpha(m*(f+1), k)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	return p.NewAlpha(m, k, f, alpha)
}

// NewAlpha instantiates the program with an explicit exponential base.
func (p *Program) NewAlpha(m, k, f int, alpha float64) (*Instance, error) {
	if m < 1 || k < 1 || f < 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d f=%d", ErrBadParams, m, k, f)
	}
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 1 {
		return nil, fmt.Errorf("%w: alpha must be a finite value > 1, got %g", ErrBadParams, alpha)
	}
	return &Instance{p: p, m: m, k: k, f: f, alpha: alpha}, nil
}

// Instance is a Program bound to concrete (m, k, f, alpha) parameters.
// It implements strategy.Strategy and the adversary's AppendRounds fast
// path, and carries the content-addressed fingerprint used by every
// cache layer.
type Instance struct {
	p     *Program
	m     int
	k     int
	f     int
	alpha float64
}

// Name identifies the instance for human-facing reports. Cache keys use
// Fingerprint, never Name.
func (s *Instance) Name() string {
	return fmt.Sprintf("program(%s,m=%d,k=%d,f=%d)", s.p.hash[:12], s.m, s.k, s.f)
}

// M returns the number of rays.
func (s *Instance) M() int { return s.m }

// K returns the number of robots.
func (s *Instance) K() int { return s.k }

// F returns the number of faults the instance was tuned for.
func (s *Instance) F() int { return s.f }

// Alpha returns the exponential base bound into the script.
func (s *Instance) Alpha() float64 { return s.alpha }

// Program returns the compiled program backing this instance.
func (s *Instance) Program() *Program { return s.p }

// Fingerprint returns the content-addressed cache identity: the program
// hash plus the exact bit patterns of the instantiation parameters.
func (s *Instance) Fingerprint() string {
	return "sp|" + s.p.hash +
		"|m=" + strconv.Itoa(s.m) +
		"|k=" + strconv.Itoa(s.k) +
		"|f=" + strconv.Itoa(s.f) +
		"|a=" + strconv.FormatFloat(s.alpha, 'x', -1, 64)
}

// Rounds materialises robot r's excursions up to horizon.
func (s *Instance) Rounds(r int, horizon float64) ([]trajectory.Round, error) {
	return s.AppendRounds(nil, r, horizon)
}

// AppendRounds appends robot r's excursions up to horizon to dst,
// running the compiled script in a pooled gas-metered VM.
func (s *Instance) AppendRounds(dst []trajectory.Round, r int, horizon float64) ([]trajectory.Round, error) {
	if r < 0 || r >= s.k {
		return nil, fmt.Errorf("%w: robot %d of %d", ErrBadParams, r, s.k)
	}
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) || horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %g", ErrBadParams, horizon)
	}
	v := getVM(s.p.locals)
	v.locals[slotR] = float64(r)
	v.locals[slotM] = float64(s.m)
	v.locals[slotK] = float64(s.k)
	v.locals[slotF] = float64(s.f)
	v.locals[slotAlpha] = s.alpha
	v.locals[slotHorizon] = horizon
	v.m = s.m
	v.dst = dst
	_, err := v.execStmts(s.p.body)
	dst = v.dst
	putVM(v)
	if err != nil {
		return nil, err
	}
	return dst, nil
}
