package program

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"strconv"
	"strings"
)

// wrapHeader turns a script (a function body) into a parseable Go file.
// It adds exactly two lines before the user's first line; compile errors
// subtract that offset so positions point into the script.
const wrapHeader = "package p\nfunc gen() {\n"
const wrapHeaderLines = 2

// Compile parses and compiles a strategy script. The script is the body
// of a Go function; see the package documentation for the accepted
// subset and the bound input variables.
func Compile(src string) (*Program, error) {
	if len(src) > MaxSourceBytes {
		return nil, fmt.Errorf("%w: source is %d bytes, limit %d", ErrCompile, len(src), MaxSourceBytes)
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "script", wrapHeader+src+"\n}", 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrCompile, parseErrString(err))
	}
	if len(file.Decls) != 1 {
		return nil, fmt.Errorf("%w: script must be a single function body (found extra declarations)", ErrCompile)
	}
	fn, ok := file.Decls[0].(*ast.FuncDecl)
	if !ok || fn.Body == nil {
		return nil, fmt.Errorf("%w: script must be a single function body", ErrCompile)
	}
	c := &compiler{
		fset:  fset,
		slots: make(map[string]int, numInputSlots+8),
	}
	for i, name := range inputNames {
		c.slots[name] = i
	}
	body, err := c.compileStmts(fn.Body.List)
	if err != nil {
		return nil, err
	}
	p := &Program{
		source: src,
		body:   body,
		locals: len(c.slots),
		nodes:  c.nodes,
	}
	p.computeHash()
	return p, nil
}

// MustCompile compiles a script known at build time and panics on error.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// parseErrString rewrites parser error positions so line numbers refer
// to the script, not the wrapped file.
func parseErrString(err error) string {
	list, ok := err.(scanner.ErrorList)
	if !ok {
		return err.Error()
	}
	parts := make([]string, 0, len(list))
	for i, e := range list {
		if i == 4 {
			parts = append(parts, "...")
			break
		}
		line := e.Pos.Line - wrapHeaderLines
		if line < 1 {
			line = 1
		}
		parts = append(parts, fmt.Sprintf("line %d: %s", line, e.Msg))
	}
	return strings.Join(parts, "; ")
}

type compiler struct {
	fset  *token.FileSet
	slots map[string]int
	nodes int
	depth int
}

func (c *compiler) errAt(node ast.Node, format string, args ...any) error {
	pos := c.fset.Position(node.Pos())
	line := pos.Line - wrapHeaderLines
	if line < 1 {
		line = 1
	}
	return fmt.Errorf("%w: line %d: %s", ErrCompile, line, fmt.Sprintf(format, args...))
}

func (c *compiler) node(n ast.Node) error {
	c.nodes++
	if c.nodes > MaxProgramNodes {
		return c.errAt(n, "program exceeds %d IR nodes", MaxProgramNodes)
	}
	return nil
}

func (c *compiler) enter(n ast.Node) error {
	c.depth++
	if c.depth > MaxDepth {
		return c.errAt(n, "nesting exceeds depth %d", MaxDepth)
	}
	return nil
}

func (c *compiler) leave() { c.depth-- }

func (c *compiler) compileStmts(list []ast.Stmt) ([]stmt, error) {
	out := make([]stmt, 0, len(list))
	for _, as := range list {
		s, err := c.compileStmt(as)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (c *compiler) compileStmt(as ast.Stmt) (stmt, error) {
	if err := c.node(as); err != nil {
		return stmt{}, err
	}
	if err := c.enter(as); err != nil {
		return stmt{}, err
	}
	defer c.leave()
	switch n := as.(type) {
	case *ast.AssignStmt:
		return c.compileAssign(n)
	case *ast.IncDecStmt:
		return c.compileIncDec(n)
	case *ast.IfStmt:
		return c.compileIf(n)
	case *ast.ForStmt:
		return c.compileFor(n)
	case *ast.BranchStmt:
		switch n.Tok {
		case token.BREAK:
			if n.Label != nil {
				return stmt{}, c.errAt(n, "labeled break is not supported")
			}
			return stmt{kind: stBreak}, nil
		case token.CONTINUE:
			if n.Label != nil {
				return stmt{}, c.errAt(n, "labeled continue is not supported")
			}
			return stmt{kind: stContinue}, nil
		}
		return stmt{}, c.errAt(n, "%s is not supported", n.Tok)
	case *ast.ReturnStmt:
		if len(n.Results) != 0 {
			return stmt{}, c.errAt(n, "return takes no values")
		}
		return stmt{kind: stReturn}, nil
	case *ast.ExprStmt:
		return c.compileEmit(n)
	case *ast.BlockStmt:
		body, err := c.compileStmts(n.List)
		if err != nil {
			return stmt{}, err
		}
		// A bare block compiles to an if(1){...}; blocks do not
		// introduce scope in this flat-scoped language.
		return stmt{kind: stIf, cond: &expr{op: opConst, val: 1}, body: body}, nil
	case *ast.EmptyStmt:
		return stmt{kind: stIf, cond: &expr{op: opConst, val: 1}}, nil
	default:
		return stmt{}, c.errAt(as, "%T statements are not supported", as)
	}
}

func (c *compiler) compileAssign(n *ast.AssignStmt) (stmt, error) {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return stmt{}, c.errAt(n, "assignments must have a single variable on each side")
	}
	id, ok := n.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return stmt{}, c.errAt(n, "assignment target must be a variable name")
	}
	rhs, err := c.compileExpr(n.Rhs[0])
	if err != nil {
		return stmt{}, err
	}
	slot, defined := c.slots[id.Name]
	switch n.Tok {
	case token.DEFINE:
		if defined {
			return stmt{}, c.errAt(n, "%s is already defined (this language has one flat scope; use = to assign)", id.Name)
		}
		slot = len(c.slots)
		c.slots[id.Name] = slot
	case token.ASSIGN:
		if !defined {
			return stmt{}, c.errAt(n, "%s is not defined (use := to define it)", id.Name)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if !defined {
			return stmt{}, c.errAt(n, "%s is not defined (use := to define it)", id.Name)
		}
		op := map[token.Token]exprOp{
			token.ADD_ASSIGN: opAdd,
			token.SUB_ASSIGN: opSub,
			token.MUL_ASSIGN: opMul,
			token.QUO_ASSIGN: opDiv,
		}[n.Tok]
		if err := c.node(n); err != nil { // the implied binary op
			return stmt{}, err
		}
		rhs = expr{op: op, args: []expr{{op: opVar, slot: slot}, rhs}}
	default:
		return stmt{}, c.errAt(n, "%s assignment is not supported", n.Tok)
	}
	r := rhs
	return stmt{kind: stAssign, slot: slot, x: &r}, nil
}

func (c *compiler) compileIncDec(n *ast.IncDecStmt) (stmt, error) {
	id, ok := n.X.(*ast.Ident)
	if !ok {
		return stmt{}, c.errAt(n, "%s target must be a variable name", n.Tok)
	}
	slot, defined := c.slots[id.Name]
	if !defined {
		return stmt{}, c.errAt(n, "%s is not defined", id.Name)
	}
	op := opAdd
	if n.Tok == token.DEC {
		op = opSub
	}
	if err := c.node(n); err != nil {
		return stmt{}, err
	}
	rhs := expr{op: op, args: []expr{{op: opVar, slot: slot}, {op: opConst, val: 1}}}
	return stmt{kind: stAssign, slot: slot, x: &rhs}, nil
}

func (c *compiler) compileIf(n *ast.IfStmt) (stmt, error) {
	if n.Init != nil {
		return stmt{}, c.errAt(n, "if with an init statement is not supported")
	}
	cond, err := c.compileExpr(n.Cond)
	if err != nil {
		return stmt{}, err
	}
	body, err := c.compileStmts(n.Body.List)
	if err != nil {
		return stmt{}, err
	}
	var els []stmt
	switch e := n.Else.(type) {
	case nil:
	case *ast.BlockStmt:
		if els, err = c.compileStmts(e.List); err != nil {
			return stmt{}, err
		}
	case *ast.IfStmt:
		chained, err := c.compileStmt(e)
		if err != nil {
			return stmt{}, err
		}
		els = []stmt{chained}
	default:
		return stmt{}, c.errAt(n, "unsupported else clause")
	}
	cc := cond
	return stmt{kind: stIf, cond: &cc, body: body, els: els}, nil
}

func (c *compiler) compileFor(n *ast.ForStmt) (stmt, error) {
	var out stmt
	out.kind = stFor
	if n.Init != nil {
		init, err := c.compileStmt(n.Init)
		if err != nil {
			return stmt{}, err
		}
		if init.kind != stAssign {
			return stmt{}, c.errAt(n, "for init must be an assignment")
		}
		ii := init
		out.init = &ii
	}
	if n.Cond != nil {
		cond, err := c.compileExpr(n.Cond)
		if err != nil {
			return stmt{}, err
		}
		cc := cond
		out.cond = &cc
	}
	if n.Post != nil {
		post, err := c.compileStmt(n.Post)
		if err != nil {
			return stmt{}, err
		}
		if post.kind != stAssign {
			return stmt{}, c.errAt(n, "for post must be an assignment")
		}
		pp := post
		out.post = &pp
	}
	body, err := c.compileStmts(n.Body.List)
	if err != nil {
		return stmt{}, err
	}
	out.body = body
	return out, nil
}

func (c *compiler) compileEmit(n *ast.ExprStmt) (stmt, error) {
	call, ok := n.X.(*ast.CallExpr)
	if !ok {
		return stmt{}, c.errAt(n, "expression statements must be emit(ray, turn) calls")
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "emit" {
		return stmt{}, c.errAt(n, "only emit(ray, turn) may be called as a statement")
	}
	if len(call.Args) != 2 {
		return stmt{}, c.errAt(n, "emit takes exactly 2 arguments (ray, turn), got %d", len(call.Args))
	}
	ray, err := c.compileExpr(call.Args[0])
	if err != nil {
		return stmt{}, err
	}
	turn, err := c.compileExpr(call.Args[1])
	if err != nil {
		return stmt{}, err
	}
	rr, tt := ray, turn
	return stmt{kind: stEmit, x: &rr, y: &tt}, nil
}

func (c *compiler) compileExpr(ae ast.Expr) (expr, error) {
	if err := c.node(ae); err != nil {
		return expr{}, err
	}
	if err := c.enter(ae); err != nil {
		return expr{}, err
	}
	defer c.leave()
	switch n := ae.(type) {
	case *ast.BasicLit:
		switch n.Kind {
		case token.INT, token.FLOAT:
			v, err := strconv.ParseFloat(n.Value, 64)
			if err != nil {
				return expr{}, c.errAt(n, "bad numeric literal %s", n.Value)
			}
			return expr{op: opConst, val: v}, nil
		default:
			return expr{}, c.errAt(n, "only numeric literals are supported, got %s", n.Kind)
		}
	case *ast.Ident:
		slot, ok := c.slots[n.Name]
		if !ok {
			return expr{}, c.errAt(n, "unknown variable %s (inputs are r, m, k, f, alpha, horizon)", n.Name)
		}
		return expr{op: opVar, slot: slot}, nil
	case *ast.ParenExpr:
		c.nodes-- // parens are free: they do not change the IR
		return c.compileExpr(n.X)
	case *ast.UnaryExpr:
		x, err := c.compileExpr(n.X)
		if err != nil {
			return expr{}, err
		}
		switch n.Op {
		case token.SUB:
			return expr{op: opNeg, args: []expr{x}}, nil
		case token.ADD:
			c.nodes--
			return x, nil
		case token.NOT:
			return expr{op: opNot, args: []expr{x}}, nil
		default:
			return expr{}, c.errAt(n, "unary %s is not supported", n.Op)
		}
	case *ast.BinaryExpr:
		op, ok := binaryOps[n.Op]
		if !ok {
			if n.Op == token.REM {
				return expr{}, c.errAt(n, "%% is not supported; use mod(a, b)")
			}
			return expr{}, c.errAt(n, "binary %s is not supported", n.Op)
		}
		x, err := c.compileExpr(n.X)
		if err != nil {
			return expr{}, err
		}
		y, err := c.compileExpr(n.Y)
		if err != nil {
			return expr{}, err
		}
		return expr{op: op, args: []expr{x, y}}, nil
	case *ast.CallExpr:
		id, ok := n.Fun.(*ast.Ident)
		if !ok {
			return expr{}, c.errAt(n, "only builtin functions may be called")
		}
		if id.Name == "emit" {
			return expr{}, c.errAt(n, "emit is a statement, not an expression")
		}
		fn, ok := builtinByName[id.Name]
		if !ok {
			return expr{}, c.errAt(n, "unknown function %s (builtins: pow, log, exp, sqrt, abs, floor, ceil, min, max, mod)", id.Name)
		}
		spec := builtins[fn]
		if len(n.Args) != spec.arity {
			return expr{}, c.errAt(n, "%s takes %d arguments, got %d", spec.name, spec.arity, len(n.Args))
		}
		args := make([]expr, 0, spec.arity)
		for _, a := range n.Args {
			x, err := c.compileExpr(a)
			if err != nil {
				return expr{}, err
			}
			args = append(args, x)
		}
		return expr{op: opCall, fn: fn, args: args}, nil
	default:
		return expr{}, c.errAt(ae, "%T expressions are not supported", ae)
	}
}

var binaryOps = map[token.Token]exprOp{
	token.ADD:  opAdd,
	token.SUB:  opSub,
	token.MUL:  opMul,
	token.QUO:  opDiv,
	token.LSS:  opLT,
	token.LEQ:  opLE,
	token.GTR:  opGT,
	token.GEQ:  opGE,
	token.EQL:  opEQ,
	token.NEQ:  opNE,
	token.LAND: opAnd,
	token.LOR:  opOr,
}
