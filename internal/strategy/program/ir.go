package program

import (
	"math"
	"strconv"
	"strings"
)

// The IR is a slot-resolved tree: identifiers are compiled to integer
// slots, names are gone, and every node carries only what the VM needs.
// The canonical rendering below (an S-expression per node) is the byte
// stream the content hash is computed over, so it must stay stable.

type exprOp uint8

const (
	opConst exprOp = iota
	opVar
	opNeg
	opNot
	opAdd
	opSub
	opMul
	opDiv
	opLT
	opLE
	opGT
	opGE
	opEQ
	opNE
	opAnd
	opOr
	opCall
)

var exprOpNames = [...]string{
	opConst: "const",
	opVar:   "var",
	opNeg:   "neg",
	opNot:   "not",
	opAdd:   "add",
	opSub:   "sub",
	opMul:   "mul",
	opDiv:   "div",
	opLT:    "lt",
	opLE:    "le",
	opGT:    "gt",
	opGE:    "ge",
	opEQ:    "eq",
	opNE:    "ne",
	opAnd:   "and",
	opOr:    "or",
	opCall:  "call",
}

type expr struct {
	op   exprOp
	val  float64 // opConst
	slot int     // opVar
	fn   builtinID
	args []expr // operands: 1 for unary, 2 for binary, arity for calls
}

type stmtKind uint8

const (
	stAssign stmtKind = iota
	stIf
	stFor
	stBreak
	stContinue
	stReturn
	stEmit
)

type stmt struct {
	kind stmtKind
	slot int   // stAssign target
	cond *expr // stIf / stFor condition (nil for unconditional for)
	x    *expr // stAssign rhs, stEmit ray
	y    *expr // stEmit turn
	init *stmt // stFor init (nil if absent)
	post *stmt // stFor post (nil if absent)
	body []stmt
	els  []stmt
}

type builtinID uint8

const (
	bPow builtinID = iota
	bLog
	bExp
	bSqrt
	bAbs
	bFloor
	bCeil
	bMin
	bMax
	bMod
)

type builtinSpec struct {
	name  string
	arity int
	fn1   func(float64) float64
	fn2   func(float64, float64) float64
}

// mod is the floor-normalised remainder: for b > 0 the result is always
// in [0, b), which is what ray-cycling scripts need (Go's math.Mod is
// truncated and can be negative).
func normMod(a, b float64) float64 {
	r := math.Mod(a, b)
	if r != 0 && (r < 0) != (b < 0) {
		r += b
	}
	return r
}

var builtins = [...]builtinSpec{
	bPow:   {name: "pow", arity: 2, fn2: math.Pow},
	bLog:   {name: "log", arity: 1, fn1: math.Log},
	bExp:   {name: "exp", arity: 1, fn1: math.Exp},
	bSqrt:  {name: "sqrt", arity: 1, fn1: math.Sqrt},
	bAbs:   {name: "abs", arity: 1, fn1: math.Abs},
	bFloor: {name: "floor", arity: 1, fn1: math.Floor},
	bCeil:  {name: "ceil", arity: 1, fn1: math.Ceil},
	bMin:   {name: "min", arity: 2, fn2: math.Min},
	bMax:   {name: "max", arity: 2, fn2: math.Max},
	bMod:   {name: "mod", arity: 2, fn2: normMod},
}

var builtinByName = func() map[string]builtinID {
	m := make(map[string]builtinID, len(builtins))
	for id, spec := range builtins {
		m[spec.name] = builtinID(id)
	}
	return m
}()

// renderExpr writes the canonical S-expression for e. Constants are
// rendered in hex float form so the exact bit pattern feeds the hash.
func renderExpr(b *strings.Builder, e *expr) {
	switch e.op {
	case opConst:
		b.WriteString("(const ")
		b.WriteString(strconv.FormatFloat(e.val, 'x', -1, 64))
		b.WriteByte(')')
	case opVar:
		b.WriteString("(var ")
		b.WriteString(strconv.Itoa(e.slot))
		b.WriteByte(')')
	case opCall:
		b.WriteString("(call ")
		b.WriteString(builtins[e.fn].name)
		for i := range e.args {
			b.WriteByte(' ')
			renderExpr(b, &e.args[i])
		}
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(exprOpNames[e.op])
		for i := range e.args {
			b.WriteByte(' ')
			renderExpr(b, &e.args[i])
		}
		b.WriteByte(')')
	}
}

func renderStmts(b *strings.Builder, list []stmt) {
	for i := range list {
		renderStmt(b, &list[i])
	}
}

func renderStmt(b *strings.Builder, s *stmt) {
	switch s.kind {
	case stAssign:
		b.WriteString("(set ")
		b.WriteString(strconv.Itoa(s.slot))
		b.WriteByte(' ')
		renderExpr(b, s.x)
		b.WriteByte(')')
	case stIf:
		b.WriteString("(if ")
		renderExpr(b, s.cond)
		b.WriteString(" (then ")
		renderStmts(b, s.body)
		b.WriteByte(')')
		if len(s.els) > 0 {
			b.WriteString(" (else ")
			renderStmts(b, s.els)
			b.WriteByte(')')
		}
		b.WriteByte(')')
	case stFor:
		b.WriteString("(for")
		if s.init != nil {
			b.WriteString(" (init ")
			renderStmt(b, s.init)
			b.WriteByte(')')
		}
		if s.cond != nil {
			b.WriteString(" (cond ")
			renderExpr(b, s.cond)
			b.WriteByte(')')
		}
		if s.post != nil {
			b.WriteString(" (post ")
			renderStmt(b, s.post)
			b.WriteByte(')')
		}
		b.WriteString(" (body ")
		renderStmts(b, s.body)
		b.WriteString("))")
	case stBreak:
		b.WriteString("(break)")
	case stContinue:
		b.WriteString("(continue)")
	case stReturn:
		b.WriteString("(return)")
	case stEmit:
		b.WriteString("(emit ")
		renderExpr(b, s.x)
		b.WriteByte(' ')
		renderExpr(b, s.y)
		b.WriteByte(')')
	}
}
