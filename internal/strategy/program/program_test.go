package program

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// doubling is a minimal valid single-ray script: turn doubles each
// round, covering (1, horizon] for m=1.
const doubling = `
turn := 1.0
for turn <= horizon * 4 {
	emit(1, turn)
	turn = turn * 2
}
`

func TestCompileAndRun(t *testing.T) {
	p, err := Compile(doubling)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := p.NewAlpha(1, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := inst.Rounds(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no rounds emitted")
	}
	for i, rd := range rounds {
		if rd.Ray != 1 {
			t.Errorf("round %d: ray %d, want 1 (rays are 1-based)", i, rd.Ray)
		}
		if want := math.Pow(2, float64(i)); rd.Turn != want {
			t.Errorf("round %d: turn %g, want %g", i, rd.Turn, want)
		}
	}
}

// TestHashCanonicalization pins the content-hash contract: the hash
// keys on the canonical IR, so formatting, comments and local variable
// names cannot split the cache — while any semantic difference must.
func TestHashCanonicalization(t *testing.T) {
	base := MustCompile(doubling)
	reformatted := MustCompile(`turn := 1.0 // start at one
// grow geometrically
for turn <= horizon*4 {
	emit(1, turn)
	turn = turn * 2
}`)
	if base.Hash() != reformatted.Hash() {
		t.Errorf("whitespace/comment changes split the hash:\n%s\n%s", base.Hash(), reformatted.Hash())
	}
	renamed := MustCompile(strings.ReplaceAll(doubling, "turn", "d"))
	if base.Hash() != renamed.Hash() {
		t.Errorf("local variable rename split the hash:\n%s\n%s", base.Hash(), renamed.Hash())
	}
	semantic := MustCompile(strings.Replace(doubling, "turn * 2", "turn * 3", 1))
	if base.Hash() == semantic.Hash() {
		t.Error("semantically different scripts share a hash")
	}
	constTweak := MustCompile(strings.Replace(doubling, "turn := 1.0", "turn := 1.0000000000000002", 1))
	if base.Hash() == constTweak.Hash() {
		t.Error("one-ulp constant change shares a hash (constants must hash at full precision)")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"syntax", "turn := ", "compile"},
		{"unknown variable", "emit(1, x)", "unknown variable"},
		{"unknown function", "emit(1, foo(2))", "unknown function"},
		{"redefine", "a := 1\na := 2", "already defined"},
		{"assign undefined", "a = 1", "use := to define"},
		{"modulo operator", "a := 5 % 2", "use mod(a, b)"},
		{"emit as expression", "a := emit(1, 2)", "emit"},
		{"emit arity", "emit(1)", "emit"},
		{"builtin arity", "a := pow(2)", "takes 2 arguments"},
		{"goto", "L: emit(1, 2)", "compile"},
		{"call unsupported stmt", "go emit(1, 2)", "compile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("compiled: %q", tc.src)
			}
			if !errors.Is(err, ErrCompile) {
				t.Errorf("error %v does not wrap ErrCompile", err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSourceSizeLimit(t *testing.T) {
	big := "a := 1\n" + strings.Repeat("// padding comment to exceed the source cap\n", 2000)
	if _, err := Compile(big); !errors.Is(err, ErrCompile) {
		t.Fatalf("oversized source compiled (err=%v)", err)
	}
}

func TestNodeCountLimit(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("a := 0\n")
	for i := 0; i < MaxProgramNodes; i++ {
		sb.WriteString("a = a + 1\n")
	}
	if _, err := Compile(sb.String()); !errors.Is(err, ErrCompile) {
		t.Fatalf("program over the node cap compiled (err=%v)", err)
	}
}

// TestGasExhaustion pins the sandbox's core guarantee: a runaway loop
// burns its gas budget and errors — it cannot wedge the evaluator. The
// error names the limit, which the server surfaces in its 400.
func TestGasExhaustion(t *testing.T) {
	for _, src := range []string{
		"for {\n}",                        // empty infinite loop
		"x := 0.0\nfor {\n\tx = x + 1\n}", // busy infinite loop
		"x := 1.0\nfor x > 0 {\n\tx = x + 1\n}",
	} {
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		inst, err := p.NewAlpha(1, 1, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, err = inst.Rounds(0, 10)
		if !errors.Is(err, ErrGasExhausted) {
			t.Fatalf("runaway %q: err = %v, want ErrGasExhausted", src, err)
		}
		if !strings.Contains(err.Error(), "limit") {
			t.Errorf("gas error %q does not name the limit", err)
		}
	}
}

func TestRoundCap(t *testing.T) {
	p := MustCompile(`
for {
	emit(1, 1.5)
}
`)
	inst, err := p.NewAlpha(1, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.Rounds(0, 10)
	// The emit cap or the gas budget must stop it; the cap comes first
	// at these costs.
	if !errors.Is(err, ErrTooManyRounds) && !errors.Is(err, ErrGasExhausted) {
		t.Fatalf("unbounded emit: err = %v", err)
	}
}

func TestEmitValidation(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"ray zero", "emit(0, 1.5)"},
		{"ray past m", "emit(3, 1.5)"},
		{"fractional ray", "emit(1.5, 2)"},
		{"negative turn", "emit(1, -2)"},
		{"NaN turn", "emit(1, log(-1))"},
		{"infinite turn", "emit(1, exp(1e9))"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst, err := MustCompile(tc.src).NewAlpha(2, 1, 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inst.Rounds(0, 10); !errors.Is(err, ErrEval) {
				t.Fatalf("err = %v, want ErrEval", err)
			}
		})
	}
}

func TestInstanceParamValidation(t *testing.T) {
	p := MustCompile(doubling)
	if _, err := p.NewAlpha(0, 1, 0, 2); !errors.Is(err, ErrBadParams) {
		t.Error("m=0 accepted")
	}
	if _, err := p.NewAlpha(1, 0, 0, 2); !errors.Is(err, ErrBadParams) {
		t.Error("k=0 accepted")
	}
	if _, err := p.NewAlpha(1, 1, -1, 2); !errors.Is(err, ErrBadParams) {
		t.Error("f=-1 accepted")
	}
	if _, err := p.NewAlpha(1, 1, 0, 1); !errors.Is(err, ErrBadParams) {
		t.Error("alpha=1 accepted")
	}
	if _, err := p.NewAlpha(1, 1, 0, math.Inf(1)); !errors.Is(err, ErrBadParams) {
		t.Error("alpha=+Inf accepted")
	}
	inst, err := p.NewAlpha(1, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Rounds(2, 10); !errors.Is(err, ErrBadParams) {
		t.Error("robot index past k accepted")
	}
	if _, err := inst.Rounds(0, math.NaN()); !errors.Is(err, ErrBadParams) {
		t.Error("NaN horizon accepted")
	}
}

// TestFlatScopeAcrossBlocks pins the DSL's flat-scope rule: a variable
// defined inside a block stays visible after it, and pooled VMs must
// not leak one run's locals into the next (fresh runs see zeroed
// slots via definition-before-use enforcement at compile time).
func TestFlatScopeAcrossBlocks(t *testing.T) {
	p := MustCompile(`
if m > 0 {
	d := 2.0
	emit(1, d)
}
emit(1, d + 1)
`)
	inst, err := p.NewAlpha(1, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := inst.Rounds(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 || rounds[0].Turn != 2 || rounds[1].Turn != 3 {
		t.Fatalf("rounds = %+v", rounds)
	}
	// Run again through the pooled VM: identical output, no stale state.
	again, err := inst.Rounds(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0].Turn != 2 || again[1].Turn != 3 {
		t.Fatalf("pooled rerun diverged: %+v", again)
	}
}

func TestBuiltins(t *testing.T) {
	p := MustCompile(`
emit(1, pow(2, 10))
emit(1, sqrt(16))
emit(1, abs(0-3))
emit(1, floor(2.7))
emit(1, ceil(2.2))
emit(1, min(4, 7))
emit(1, max(4, 7))
emit(1, mod(0-1, 3) + 1)
emit(1, exp(0) + log(1) + 1)
`)
	inst, err := p.NewAlpha(1, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := inst.Rounds(0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1024, 4, 3, 2, 3, 4, 7, 3, 2}
	if len(rounds) != len(want) {
		t.Fatalf("%d rounds, want %d", len(rounds), len(want))
	}
	for i, w := range want {
		if rounds[i].Turn != w {
			t.Errorf("builtin case %d: %g, want %g (mod must floor-normalize)", i, rounds[i].Turn, w)
		}
	}
}
