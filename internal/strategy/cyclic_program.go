package strategy

import (
	"repro/internal/strategy/program"
)

// CyclicScript is the cyclic exponential strategy of the appendix
// expressed in the strategy-program DSL. It is the reference script for
// the /v1/strategies surface and the program CyclicExponential compiles
// to at init: robot r's l-th excursion (l from 1-2m) turns at
// alpha^(k*l + m*(r+1)) on ray ((l-1) mod m) + 1, generated until the
// exponent passes log_alpha(horizon) + q + k*m.
//
// The arithmetic mirrors the legacy Go constructor operation for
// operation — one pow seeds the geometric chain, one pow computes the
// per-round step, and the loop multiplies — so the emitted rounds are
// bit-identical to the historical implementation (pinned by
// TestCyclicProgramBitIdentity).
const CyclicScript = `
q := m * (f + 1)
stop := log(horizon)/log(alpha) + (q + k*m)
base := m * (r + 1)
l := 1 - 2*m
e := k*l + base
step := pow(alpha, k)
turn := pow(alpha, e)
for e <= stop {
	emit(mod(l-1, m)+1, turn)
	turn = turn * step
	l = l + 1
	e = k*l + base
}
`

// cyclicProgram is compiled once at init; every CyclicExponential
// instance shares it.
var cyclicProgram = program.MustCompile(CyclicScript)

// CyclicProgram returns the compiled strategy program backing
// CyclicExponential. Its Hash is the content-addressed identity of the
// cyclic exponential family used in engine cache keys.
func CyclicProgram() *program.Program { return cyclicProgram }
