package strategy

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/numeric"
	"repro/internal/trajectory"
)

func TestNewCyclicExponentialRegimeChecks(t *testing.T) {
	tests := []struct {
		name    string
		m, k, f int
		wantErr bool
	}{
		{"cow path", 2, 1, 0, false},
		{"line one fault", 2, 3, 1, false},
		{"three rays", 3, 2, 0, false},
		{"trivial regime", 2, 4, 1, true},
		{"unsolvable", 2, 2, 2, true},
		{"invalid m", 0, 1, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCyclicExponential(tt.m, tt.k, tt.f)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewCyclicExponential(%d,%d,%d) error = %v, wantErr %v",
					tt.m, tt.k, tt.f, err, tt.wantErr)
			}
		})
	}
}

func TestCyclicExponentialOptimalAlpha(t *testing.T) {
	s, err := NewCyclicExponential(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// q = 2, k = 1: alpha* = q/(q-k) = 2, the classic doubling base.
	if !numeric.EqualWithin(s.Alpha(), 2, 1e-14) {
		t.Errorf("alpha* = %g, want 2", s.Alpha())
	}
	if s.Q() != 2 || s.F() != 0 || s.M() != 2 || s.K() != 1 {
		t.Error("accessors misbehave")
	}
}

func TestNewCyclicExponentialAlphaValidation(t *testing.T) {
	if _, err := NewCyclicExponentialAlpha(2, 1, 0, 1.0); !errors.Is(err, ErrBadParams) {
		t.Error("alpha = 1 should fail")
	}
	if _, err := NewCyclicExponentialAlpha(2, 1, 0, math.NaN()); !errors.Is(err, ErrBadParams) {
		t.Error("alpha = NaN should fail")
	}
	s, err := NewCyclicExponentialAlpha(2, 1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alpha() != 3 {
		t.Errorf("alpha = %g, want 3", s.Alpha())
	}
}

func TestCyclicExponentialRoundsCyclicOrder(t *testing.T) {
	s, err := NewCyclicExponential(3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := s.Rounds(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no rounds")
	}
	// Rays must cycle 1, 2, 3, 1, 2, 3, ... starting from ray 1 at
	// l = 1-2m (l ≡ 1 mod m maps to ray 1).
	first := ((1-2*3-1)%3+3)%3 + 1
	for i, r := range rounds {
		want := (first-1+i)%3 + 1
		if r.Ray != want {
			t.Fatalf("round %d on ray %d, want %d", i, r.Ray, want)
		}
	}
	// Turns form a geometric progression with ratio alpha^k.
	ratio := math.Pow(s.Alpha(), float64(s.K()))
	for i := 1; i < len(rounds); i++ {
		if !numeric.EqualWithin(rounds[i].Turn/rounds[i-1].Turn, ratio, 1e-9) {
			t.Fatalf("turn ratio %g at %d, want %g", rounds[i].Turn/rounds[i-1].Turn, i, ratio)
		}
	}
}

func TestCyclicExponentialRoundsErrors(t *testing.T) {
	s, err := NewCyclicExponential(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rounds(1, 10); !errors.Is(err, ErrBadParams) {
		t.Error("robot index out of range should fail")
	}
	if _, err := s.Rounds(0, 0); !errors.Is(err, ErrBadParams) {
		t.Error("zero horizon should fail")
	}
	if _, err := s.Rounds(0, math.Inf(1)); !errors.Is(err, ErrBadParams) {
		t.Error("infinite horizon should fail")
	}
}

// coverCount returns how many distinct robots visit point p by time
// lambda * dist, using the strategy's trajectories.
func coverCount(t *testing.T, s Strategy, p trajectory.Point, lambda, horizon float64) int {
	t.Helper()
	trajs, err := Trajectories(s, horizon)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tr := range trajs {
		if tr.FirstVisit(p) <= lambda*p.Dist {
			count++
		}
	}
	return count
}

func TestCyclicExponentialCoversWithMultiplicity(t *testing.T) {
	// Theorem 6's strategy must deliver f+1 visits to every point at
	// distance >= 1 within lambda0 * dist.
	cases := []struct{ m, k, f int }{
		{2, 1, 0}, {2, 3, 1}, {3, 2, 0}, {3, 4, 1}, {4, 3, 0},
	}
	for _, c := range cases {
		s, err := NewCyclicExponential(c.m, c.k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		lambda0, err := bounds.AMKF(c.m, c.k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		lambda := lambda0 * (1 + 1e-9) // tolerance for float rounding
		for _, dist := range []float64{1, 1.5, 2.7, 10, 49.3} {
			for ray := 1; ray <= c.m; ray++ {
				p := trajectory.Point{Ray: ray, Dist: dist}
				got := coverCount(t, s, p, lambda, dist*4)
				if got < c.f+1 {
					t.Errorf("m=%d k=%d f=%d: point %v visited by %d robots within lambda0*d, want >= %d",
						c.m, c.k, c.f, p, got, c.f+1)
				}
			}
		}
	}
}

func TestCyclicExponentialRatioNearLambda0(t *testing.T) {
	// The worst-case over sampled points of the (f+1)-st visit ratio must
	// stay at or below lambda0 (up to sampling slack) and the supremum
	// must be approached somewhere.
	c := struct{ m, k, f int }{2, 3, 1}
	s, err := NewCyclicExponential(c.m, c.k, c.f)
	if err != nil {
		t.Fatal(err)
	}
	lambda0, err := bounds.AMKF(c.m, c.k, c.f)
	if err != nil {
		t.Fatal(err)
	}
	trajs, err := Trajectories(s, 400)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, dist := range logspace(1, 100, 400) {
		for ray := 1; ray <= c.m; ray++ {
			p := trajectory.Point{Ray: ray, Dist: dist}
			var visits []float64
			for _, tr := range trajs {
				visits = append(visits, tr.FirstVisit(p))
			}
			sort.Float64s(visits)
			ratio := visits[c.f] / dist
			if ratio > worst {
				worst = ratio
			}
		}
	}
	if worst > lambda0*(1+1e-9) {
		t.Errorf("sampled worst ratio %.9g exceeds lambda0 %.9g", worst, lambda0)
	}
	if worst < lambda0*0.95 {
		t.Errorf("sampled worst ratio %.9g is far below lambda0 %.9g; strategy looks wrong", worst, lambda0)
	}
}

func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		frac := float64(i) / float64(n-1)
		out[i] = lo * math.Exp(frac*math.Log(hi/lo))
	}
	return out
}

func TestDoublingIsCowPath(t *testing.T) {
	s := Doubling()
	if s.M() != 2 || s.K() != 1 || s.F() != 0 {
		t.Error("Doubling parameters wrong")
	}
	turns, err := s.LineTurns(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(turns); i++ {
		if !numeric.EqualWithin(turns[i]/turns[i-1], 2, 1e-12) {
			t.Fatalf("doubling ratio broken at %d: %g -> %g", i, turns[i-1], turns[i])
		}
	}
}

func TestLineTurnsRequiresLine(t *testing.T) {
	s, err := NewCyclicExponential(3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LineTurns(0, 10); !errors.Is(err, ErrBadParams) {
		t.Error("LineTurns on m=3 should fail")
	}
}

func TestFixedRounds(t *testing.T) {
	robots := [][]trajectory.Round{
		{{Ray: 1, Turn: 1}, {Ray: 2, Turn: 2}},
		{{Ray: 2, Turn: 1}, {Ray: 1, Turn: 2}},
	}
	s, err := NewFixedRounds("test", 2, robots)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "test" || s.M() != 2 || s.K() != 2 {
		t.Error("accessors misbehave")
	}
	got, err := s.Rounds(1, 999)
	if err != nil {
		t.Fatal(err)
	}
	got[0].Turn = 42 // must not alias internal state
	again, err := s.Rounds(1, 999)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Turn != 1 {
		t.Error("Rounds must return a defensive copy")
	}
	if _, err := s.Rounds(5, 1); !errors.Is(err, ErrBadParams) {
		t.Error("robot out of range should fail")
	}
}

func TestNewFixedRoundsValidation(t *testing.T) {
	if _, err := NewFixedRounds("x", 2, nil); !errors.Is(err, ErrBadParams) {
		t.Error("no robots should fail")
	}
	bad := [][]trajectory.Round{{{Ray: 9, Turn: 1}}}
	if _, err := NewFixedRounds("x", 2, bad); err == nil {
		t.Error("invalid ray should fail")
	}
}

func TestRaySplitValidation(t *testing.T) {
	if _, err := NewRaySplit(2, 2); !errors.Is(err, ErrBadParams) {
		t.Error("k >= m should fail")
	}
	if _, err := NewRaySplit(1, 1); !errors.Is(err, ErrBadParams) {
		t.Error("m < 2 should fail")
	}
}

func TestRaySplitCoversAllRays(t *testing.T) {
	s, err := NewRaySplit(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 2 || s.M() != 5 {
		t.Error("accessors misbehave")
	}
	seen := make(map[int]bool)
	for r := 0; r < s.K(); r++ {
		rounds, err := s.Rounds(r, 50)
		if err != nil {
			t.Fatal(err)
		}
		for _, rd := range rounds {
			seen[rd.Ray] = true
		}
	}
	for ray := 1; ray <= 5; ray++ {
		if !seen[ray] {
			t.Errorf("ray %d never visited", ray)
		}
	}
}

func TestRaySplitSingleRayRobot(t *testing.T) {
	// m=3, k=2: robot 1 owns only ray 2 and goes straight out.
	s, err := NewRaySplit(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := s.Rounds(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 || rounds[0].Ray != 2 {
		t.Errorf("single-ray robot rounds = %v, want one round on ray 2", rounds)
	}
}

func TestRaySplitEveryPointCovered(t *testing.T) {
	s, err := NewRaySplit(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	trajs, err := Trajectories(s, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []float64{1, 3, 17, 42} {
		for ray := 1; ray <= 4; ray++ {
			p := trajectory.Point{Ray: ray, Dist: dist}
			visited := false
			for _, tr := range trajs {
				if !math.IsInf(tr.FirstVisit(p), 1) {
					visited = true
				}
			}
			if !visited {
				t.Errorf("point %v never visited by ray-split", p)
			}
		}
	}
}

func TestRaySplitRoundsErrors(t *testing.T) {
	s, err := NewRaySplit(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rounds(2, 10); !errors.Is(err, ErrBadParams) {
		t.Error("robot out of range should fail")
	}
	if _, err := s.Rounds(0, math.NaN()); !errors.Is(err, ErrBadParams) {
		t.Error("NaN horizon should fail")
	}
}

func TestStandardizeValidation(t *testing.T) {
	if _, err := Standardize([]float64{1, -1}); !errors.Is(err, ErrBadParams) {
		t.Error("negative turn should fail")
	}
	if _, err := Standardize([]float64{math.Inf(1)}); !errors.Is(err, ErrBadParams) {
		t.Error("infinite turn should fail")
	}
}

func TestStandardizeAlreadyStandard(t *testing.T) {
	in := []float64{1, 2, 4, 8}
	out, err := Standardize(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("standard input changed length: %v", out)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("standard input modified: %v", out)
		}
	}
}

func TestStandardizeProducesStandardForm(t *testing.T) {
	in := []float64{5, 1, 7, 6, 2, 9}
	out, err := Standardize(in)
	if err != nil {
		t.Fatal(err)
	}
	if !IsStandardForm(out) {
		t.Errorf("Standardize output %v is not in standard form", out)
	}
}

func TestIsStandardForm(t *testing.T) {
	if !IsStandardForm([]float64{1, 1, 2, 4}) {
		t.Error("nondecreasing positive should be standard")
	}
	if IsStandardForm([]float64{2, 1}) {
		t.Error("decreasing should not be standard")
	}
	if IsStandardForm([]float64{0, 1}) {
		t.Error("zero turn should not be standard")
	}
	if !IsStandardForm(nil) {
		t.Error("empty sequence is vacuously standard")
	}
}

// pairVisitOrInf returns the pair-visit time of x for the zigzag described
// by turns, or +Inf when coverage is incomplete.
func pairVisitOrInf(t *testing.T, turns []float64, x float64) float64 {
	t.Helper()
	l, err := trajectory.NewLine(turns, false)
	if err != nil {
		t.Fatal(err)
	}
	return l.PairVisit(x)
}

func TestQuickStandardizeNeverDelaysPairVisits(t *testing.T) {
	// The heart of the Theorem 3 standardization argument: for every
	// point that the standardized prefix still pair-covers, the pair is
	// completed no later than by the original. (The paper's rewrites are
	// stated for infinite strategies; on a finite prefix they may shrink
	// the final frontier, so points covered only by the original's last
	// few excursions are excluded — the proof's prefix-limit argument
	// handles those by taking ever longer prefixes.)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		turns := make([]float64, n)
		for i := range turns {
			turns[i] = 0.5 + rng.Float64()*10
		}
		std, err := Standardize(turns)
		if err != nil {
			return false
		}
		if !IsStandardForm(std) {
			return false
		}
		maxTurn := 0.0
		for _, v := range std {
			if v > maxTurn {
				maxTurn = v
			}
		}
		for trial := 0; trial < 24; trial++ {
			x := 0.1 + rng.Float64()*maxTurn
			orig := pairVisitOrInf(t, turns, x)
			got := pairVisitOrInf(t, std, x)
			if math.IsInf(orig, 1) || math.IsInf(got, 1) {
				continue
			}
			if got > orig+1e-9 {
				t.Logf("seed %d: x=%g orig=%g std=%g turns=%v std=%v", seed, x, orig, got, turns, std)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickCyclicRoundsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		f0 := rng.Intn(2)
		kMin := f0 + 1
		kMax := m*(f0+1) - 1
		if kMax < kMin {
			return true
		}
		k := kMin + rng.Intn(kMax-kMin+1)
		s, err := NewCyclicExponential(m, k, f0)
		if err != nil {
			return false
		}
		h := 1 + rng.Float64()*50
		r := rng.Intn(k)
		a, err1 := s.Rounds(r, h)
		b, err2 := s.Rounds(r, h)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTrajectoriesPropagatesErrors(t *testing.T) {
	s, err := NewCyclicExponential(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Trajectories(s, -1); err == nil {
		t.Error("negative horizon should propagate an error")
	}
}
