package strategy

import (
	"fmt"
	"math"
)

// This file implements the strategy standardization used at the start of the
// Theorem 3 proof. The paper restricts attention to zigzag strategies given
// by a nondecreasing turning sequence (t1, t2, t3, ...) — out to +t1, back
// to -t2, out to +t3, ... — and argues that this loses no generality for
// ±-covering, via two rewrites:
//
//  1. Turns in previously visited territory can be dropped: if a turn does
//     not extend the frontier on its side (t_i <= t_{i-2}), skipping it and
//     extending the surrounding excursion covers at least as much, at least
//     as early.
//
//  2. If the robot turns at x1 and then at -x2 with x2 < x1, turning at x2
//     instead of x1 first is at least as good for ±-covering: the pair
//     (x, -x) for x in (x2, x1] is not complete until the opposite side
//     reaches x anyway, and every subsequent visit happens earlier.
//
// Standardize applies both rewrites to a fixpoint, producing a
// nondecreasing sequence that pair-visits every point no later than the
// original did. The property tests verify exactly this domination.

// Standardize rewrites an alternating zigzag turning sequence (odd turns on
// the positive side) into the paper's standard form: a nondecreasing
// sequence that ±-covers at least as much, at least as early. The input is
// not modified. An error is returned only for invalid inputs (non-positive
// or non-finite turns).
func Standardize(turns []float64) ([]float64, error) {
	for i, t := range turns {
		if !(t > 0) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("%w: turn %d is %g (want positive finite)", ErrBadParams, i+1, t)
		}
	}
	seq := append([]float64(nil), turns...)
	for {
		changed := false
		// Rewrite 1 first, to a fixpoint: drop turns that do not extend
		// their side's frontier (t_i <= t_{i-2}). Removing t_i merges its
		// neighbours t_{i-1}, t_{i+1} (same side as each other) into their
		// max. This must take priority over rewrite 2 — otherwise a
		// dominated tiny turn drags every earlier turn down before being
		// removed, which is not the paper's transformation and genuinely
		// delays pair-visits.
		for {
			removed := false
			for i := 2; i < len(seq); i++ {
				if seq[i] <= seq[i-2] {
					merged := seq[i-1]
					if i+1 < len(seq) && seq[i+1] > merged {
						merged = seq[i+1]
					}
					next := make([]float64, 0, len(seq)-2)
					next = append(next, seq[:i-1]...)
					next = append(next, merged)
					if i+2 <= len(seq) {
						next = append(next, seq[i+2:]...)
					}
					seq = next
					removed = true
					changed = true
					break
				}
			}
			if !removed {
				break
			}
		}
		// Rewrite 2: lower t_i to t_{i+1} when the next turn is smaller
		// (turn at x2 instead of x1 when x2 < x1). Right-to-left so one
		// pass propagates; newly created dominations are cleaned up by the
		// next iteration of rewrite 1.
		for i := len(seq) - 2; i >= 0; i-- {
			if seq[i] > seq[i+1] {
				seq[i] = seq[i+1]
				changed = true
			}
		}
		if !changed {
			return seq, nil
		}
	}
}

// IsStandardForm reports whether the turning sequence is in the standard
// form of the Theorem 3 proof: positive, finite, and nondecreasing.
func IsStandardForm(turns []float64) bool {
	for i, t := range turns {
		if !(t > 0) || math.IsInf(t, 0) {
			return false
		}
		if i > 0 && t < turns[i-1] {
			return false
		}
	}
	return true
}
