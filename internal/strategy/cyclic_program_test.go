package strategy

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/trajectory"
)

// TestCyclicProgramBitIdentity pins the tentpole rebase: the DSL-scripted
// cyclic program must reproduce the native generation loop (the
// production AppendRounds fast path) bit for bit — same rounds, same
// rays, same float64 turn values — across the Theorem-1 grid and a
// spread of horizons, including the horizon extensions the incremental
// Evaluator leans on. The program's content hash is the strategy's
// cache identity, so any divergence would let the hash vouch for
// rounds the built-in never produces.
func TestCyclicProgramBitIdentity(t *testing.T) {
	horizons := []float64{1.0000001, 1.5, 3, 10, 250, 2000, 1e5, 2.5e6}
	cells := 0
	for _, m := range []int{2, 3, 5} {
		for k := 1; k <= 7; k++ {
			for f := 0; f < k; f++ {
				if regime, err := bounds.Classify(m, k, f); err != nil || regime != bounds.RegimeSearch {
					continue
				}
				s, err := NewCyclicExponential(m, k, f)
				if err != nil {
					t.Fatalf("m=%d k=%d f=%d: %v", m, k, f, err)
				}
				cells++
				for r := 0; r < k; r++ {
					for _, h := range horizons {
						got, err := s.programAppendRounds(nil, r, h)
						if err != nil {
							t.Fatalf("m=%d k=%d f=%d r=%d h=%g: program: %v", m, k, f, r, h, err)
						}
						want, err := s.AppendRounds(nil, r, h)
						if err != nil {
							t.Fatalf("m=%d k=%d f=%d r=%d h=%g: native: %v", m, k, f, r, h, err)
						}
						if len(got) != len(want) {
							t.Fatalf("m=%d k=%d f=%d r=%d h=%g: program %d rounds, native %d",
								m, k, f, r, h, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("m=%d k=%d f=%d r=%d h=%g round %d: program %+v, native %+v (must be bit-identical)",
									m, k, f, r, h, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
	if cells < 20 {
		t.Fatalf("only %d search-regime cells exercised; the grid walk is broken", cells)
	}
}

// TestCyclicProgramPrefixStability pins the property the incremental
// Evaluator's Extend path depends on: the round sequence for a smaller
// horizon is a bit-identical prefix of the sequence for a larger one.
func TestCyclicProgramPrefixStability(t *testing.T) {
	s, err := NewCyclicExponential(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		long, err := s.Rounds(r, 1e5)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []float64{2, 50, 1000, 4e4} {
			short, err := s.Rounds(r, h)
			if err != nil {
				t.Fatal(err)
			}
			if len(short) > len(long) {
				t.Fatalf("r=%d h=%g: prefix longer than the extension", r, h)
			}
			for i := range short {
				if short[i] != long[i] {
					t.Fatalf("r=%d h=%g round %d: %+v != %+v — extension rewrote the prefix",
						r, h, i, short[i], long[i])
				}
			}
		}
	}
}

// TestCyclicProgramAppendsInPlace pins the pooling contract AppendRounds
// shares with the adversary's scratch reuse: appending into a
// preallocated slice grows it without reallocating when capacity
// suffices.
func TestCyclicProgramAppendsInPlace(t *testing.T) {
	s, err := NewCyclicExponential(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.AppendRounds(nil, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]trajectory.Round, 0, 4*len(first))
	dst, err := s.AppendRounds(buf, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if &buf[:1][0] != &dst[:1][0] {
		t.Error("AppendRounds reallocated despite sufficient capacity")
	}
	if len(dst) != len(first) {
		t.Errorf("appended %d rounds, want %d", len(dst), len(first))
	}
}
