// Package strategy constructs the search strategies of Kupavskii–Welzl
// (PODC 2018) and the transformations on strategies used in its proofs.
//
// The central constructor is the cyclic exponential strategy of the paper's
// appendix: k robots visit the m rays in cyclic order, the turning points
// forming a geometric progression with base alpha. Robot r's l-th excursion
// (l runs over the integers starting at 1-2m, matching the paper's j = -2
// start) goes out to alpha^(k*l + m*r) on ray ((l-1) mod m) + 1. With
// alpha = (q/(q-k))^(1/k), q = m(f+1), the strategy achieves the optimal
// competitive ratio lambda0(q,k) = 2*alpha^q/(alpha^k-1) + 1 of Theorem 6.
//
// For m = 2 the cyclic strategy alternates between the two half-lines and is
// exactly the optimal line strategy (PODC'16); with k = 1, f = 0 it
// degenerates to the classical cow-path doubling.
//
// The package also implements the strategy standardization of the Theorem 3
// proof: rewriting an arbitrary zigzag turning sequence into the
// nondecreasing alternating standard form without reducing what the robot
// +-covers.
package strategy

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strconv"

	"repro/internal/bounds"
	"repro/internal/strategy/program"
	"repro/internal/trajectory"
)

// Errors returned by strategy constructors.
var (
	// ErrBadParams is returned for invalid strategy parameters.
	ErrBadParams = errors.New("strategy: invalid parameters")
	// ErrTooManyRounds is returned when a horizon would require more
	// excursions than the configured safety cap.
	ErrTooManyRounds = errors.New("strategy: horizon requires too many rounds")
)

// maxRounds caps the number of excursions generated for a single robot, as
// a guard against pathological horizons (alpha near 1 with huge horizon).
const maxRounds = 1 << 20

// Strategy describes a collective search plan for k robots on the star S_m.
// Implementations are deterministic and stateless: Rounds may be called for
// any robot and horizon in any order.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// M returns the number of rays.
	M() int
	// K returns the number of robots.
	K() int
	// Rounds returns robot r's excursions (r in 0..K-1), including every
	// round needed so that the collective coverage of all targets at
	// distance <= horizon is complete within the returned prefix.
	Rounds(r int, horizon float64) ([]trajectory.Round, error)
}

// Fingerprinter is implemented by strategies that carry a
// content-addressed cache identity: two strategies share a fingerprint
// exactly when they generate identical rounds for every (robot,
// horizon). Every cache layer (engine jobs, snapshots) keys on
// Fingerprint, never on Name — Name is a human label and may omit
// parameters or collide. All strategies in this package implement it.
type Fingerprinter interface {
	Fingerprint() string
}

// Trajectories materializes all k robots' trajectories up to the horizon.
func Trajectories(s Strategy, horizon float64) ([]*trajectory.Star, error) {
	out := make([]*trajectory.Star, s.K())
	for r := 0; r < s.K(); r++ {
		rounds, err := s.Rounds(r, horizon)
		if err != nil {
			return nil, fmt.Errorf("strategy %q robot %d: %w", s.Name(), r, err)
		}
		st, err := trajectory.NewStar(s.M(), rounds)
		if err != nil {
			return nil, fmt.Errorf("strategy %q robot %d: %w", s.Name(), r, err)
		}
		out[r] = st
	}
	return out, nil
}

// CyclicExponential is the appendix's optimal strategy. The zero value is
// not usable; construct with NewCyclicExponential or NewCyclicExponentialAlpha.
//
// Since the strategy-program refactor the strategy has one *identity*:
// the constructor instantiates the init-compiled CyclicScript program,
// and Fingerprint (every cache key) derives from that program's content
// hash. Round generation itself runs the native multiplication chain —
// the adversary's hot path regenerates rounds on every horizon
// extension, and the native loop is an order of magnitude cheaper than
// the program VM's tree walk — with the VM path pinned bit-identical
// to it by the regression test, so a script registering CyclicScript
// through /v1/strategies produces byte-identical evaluations.
type CyclicExponential struct {
	m, k, f int
	alpha   float64
	inst    *program.Instance
}

// NewCyclicExponential returns the cyclic exponential strategy for m rays,
// k robots and f crash faults, using the optimal base
// alpha* = (q/(q-k))^(1/k) with q = m(f+1). The parameters must lie in the
// search regime f < k < m(f+1).
func NewCyclicExponential(m, k, f int) (*CyclicExponential, error) {
	regime, err := bounds.Classify(m, k, f)
	if err != nil {
		return nil, fmt.Errorf("strategy: %w", err)
	}
	if regime != bounds.RegimeSearch {
		return nil, fmt.Errorf("%w: cyclic exponential needs the search regime f < k < m(f+1), got m=%d k=%d f=%d (%v)",
			ErrBadParams, m, k, f, regime)
	}
	alpha, err := bounds.OptimalAlpha(m*(f+1), k)
	if err != nil {
		return nil, fmt.Errorf("strategy: %w", err)
	}
	return newCyclic(m, k, f, alpha)
}

// NewCyclicExponentialAlpha is NewCyclicExponential with an explicit base
// alpha > 1 (used by the alpha-sweep ablation, E7).
func NewCyclicExponentialAlpha(m, k, f int, alpha float64) (*CyclicExponential, error) {
	if _, err := NewCyclicExponential(m, k, f); err != nil {
		return nil, err
	}
	if !(alpha > 1) || math.IsInf(alpha, 0) || math.IsNaN(alpha) {
		return nil, fmt.Errorf("%w: alpha must be a finite value > 1, got %g", ErrBadParams, alpha)
	}
	return newCyclic(m, k, f, alpha)
}

// newCyclic binds the shared cyclic program to (m, k, f, alpha).
func newCyclic(m, k, f int, alpha float64) (*CyclicExponential, error) {
	inst, err := cyclicProgram.NewAlpha(m, k, f, alpha)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	return &CyclicExponential{m: m, k: k, f: f, alpha: alpha, inst: inst}, nil
}

// Name implements Strategy.
func (s *CyclicExponential) Name() string {
	return fmt.Sprintf("cyclic-exponential(m=%d,k=%d,f=%d,alpha=%.6g)", s.m, s.k, s.f, s.alpha)
}

// M implements Strategy.
func (s *CyclicExponential) M() int { return s.m }

// K implements Strategy.
func (s *CyclicExponential) K() int { return s.k }

// Alpha returns the geometric base in use.
func (s *CyclicExponential) Alpha() float64 { return s.alpha }

// F returns the number of tolerated crash faults.
func (s *CyclicExponential) F() int { return s.f }

// Q returns q = m(f+1), the covering multiplicity of Theorem 6.
func (s *CyclicExponential) Q() int { return s.m * (s.f + 1) }

// Fingerprint implements Fingerprinter: the content hash of the
// compiled cyclic program plus the exact instantiation parameters
// (alpha in full-precision hex, unlike Name's rounded %.6g).
func (s *CyclicExponential) Fingerprint() string { return s.inst.Fingerprint() }

// Rounds implements Strategy. Robot r's l-th excursion (l starting at
// 1-2m) turns at alpha^(k*l + m*(r+1)) on ray ((l-1) mod m) + 1. Rounds are
// generated until the turning point exceeds horizon * alpha^(q + k*m),
// which guarantees that every point at distance <= horizon has received all
// f+1 of its assigned visits within the returned prefix.
func (s *CyclicExponential) Rounds(r int, horizon float64) ([]trajectory.Round, error) {
	return s.AppendRounds(nil, r, horizon)
}

// AppendRounds is Rounds appending into dst — the allocation-averse
// form the adversary kernel's pooled table builds use: with a recycled
// dst of sufficient capacity the excursion generation allocates
// nothing. Generation runs the native multiplication chain (one pow
// seeds it, the loop multiplies); the compiled CyclicScript program is
// the strategy's *identity* (Fingerprint) and its semantic pin — the
// program's output is asserted bit-identical to this loop by
// TestCyclicProgramBitIdentity — but the built-in does not pay the VM's
// tree-walk on the adversary's hot path (Evaluator.Extend regenerates
// rounds per doubling). The rounds generated for a smaller horizon are
// a bit-exact prefix of those for a larger one: the chain depends only
// on (alpha, k, m, r), the horizon only caps its length;
// Evaluator.Extend relies on that prefix property.
func (s *CyclicExponential) AppendRounds(dst []trajectory.Round, r int, horizon float64) ([]trajectory.Round, error) {
	return s.nativeAppendRounds(dst, r, horizon)
}

// programAppendRounds generates the same rounds through the compiled
// CyclicScript program's VM — the path user-scripted strategies run.
// The bit-identity regression test holds it equal to AppendRounds.
func (s *CyclicExponential) programAppendRounds(dst []trajectory.Round, r int, horizon float64) ([]trajectory.Round, error) {
	out, err := s.inst.AppendRounds(dst, r, horizon)
	if err != nil {
		return nil, mapProgramErr(err)
	}
	return out, nil
}

// mapProgramErr translates program-package sentinels to this package's
// so callers keep matching strategy.ErrBadParams / ErrTooManyRounds.
func mapProgramErr(err error) error {
	switch {
	case errors.Is(err, program.ErrBadParams):
		return fmt.Errorf("%w: %v", ErrBadParams, err)
	case errors.Is(err, program.ErrTooManyRounds):
		return fmt.Errorf("%w: %v", ErrTooManyRounds, err)
	default:
		return err
	}
}

// nativeAppendRounds is the hand-written generation loop — the
// production fast path behind AppendRounds, and the reference the
// compiled program is pinned bit-identical against.
func (s *CyclicExponential) nativeAppendRounds(dst []trajectory.Round, r int, horizon float64) ([]trajectory.Round, error) {
	if r < 0 || r >= s.k {
		return nil, fmt.Errorf("%w: robot %d of %d", ErrBadParams, r, s.k)
	}
	if !(horizon > 0) || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return nil, fmt.Errorf("%w: horizon %g", ErrBadParams, horizon)
	}
	var (
		q        = s.Q()
		logA     = math.Log(s.alpha)
		stopExpo = math.Log(horizon)/logA + float64(q+s.k*s.m)
		start    = 1 - 2*s.m
		e0       = float64(s.k*start + s.m*(r+1))
	)
	if e0 > stopExpo {
		return dst, nil
	}
	// Successive turning points differ by the constant factor alpha^k,
	// so one math.Pow seeds the progression and the loop multiplies —
	// the turn-generation cost of a table build drops from one Pow per
	// excursion to two per robot. The count is known up front, so the
	// slice is grown at most once and the round cap checked before
	// looping: the rounds generated are floor(span)+1, which exceeds
	// maxRounds exactly when span >= maxRounds (the float comparison
	// also guards the int conversion below against overflow).
	span := (stopExpo - e0) / float64(s.k)
	if span >= maxRounds {
		return nil, fmt.Errorf("%w: %d rounds at horizon %g", ErrTooManyRounds, maxRounds, horizon)
	}
	if need := int(span) + 1; cap(dst)-len(dst) < need {
		grown := make([]trajectory.Round, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	step := math.Pow(s.alpha, float64(s.k))
	turn := math.Pow(s.alpha, e0)
	for l := start; ; l++ {
		e := float64(s.k*l + s.m*(r+1))
		if e > stopExpo {
			break
		}
		ray := ((l-1)%s.m + s.m) % s.m // Go's % can be negative; normalize.
		dst = append(dst, trajectory.Round{
			Ray:  ray + 1,
			Turn: turn,
		})
		turn *= step
	}
	return dst, nil
}

// LineTurns returns, for m = 2 only, robot r's zigzag turning sequence in
// the alternating standard form of Section 2 (odd turns on the positive
// half-line). The cyclic order starts each robot on ray 1, so the excursion
// turns map verbatim to the line form.
func (s *CyclicExponential) LineTurns(r int, horizon float64) ([]float64, error) {
	if s.m != 2 {
		return nil, fmt.Errorf("%w: LineTurns requires m = 2, got %d", ErrBadParams, s.m)
	}
	rounds, err := s.Rounds(r, horizon)
	if err != nil {
		return nil, err
	}
	turns := make([]float64, len(rounds))
	for i, rd := range rounds {
		turns[i] = rd.Turn
	}
	return turns, nil
}

// Doubling returns the classical cow-path strategy (one robot, two rays,
// turning points doubling), which is the f = 0, k = 1, m = 2 instance of
// the cyclic exponential family with alpha* = 2 and competitive ratio 9.
func Doubling() *CyclicExponential {
	s, err := NewCyclicExponential(2, 1, 0)
	if err != nil {
		// The parameters are in-regime by construction; a failure here is
		// a programming error, not an input error.
		panic(fmt.Sprintf("strategy: Doubling construction failed: %v", err))
	}
	return s
}

// FixedRounds is a strategy given by explicit per-robot excursion lists. It
// is the bridge for externally described strategies (cmd/verifybound) and
// for adversarial tests.
type FixedRounds struct {
	name   string
	m      int
	robots [][]trajectory.Round
	fp     string
}

// NewFixedRounds wraps explicit excursion lists as a Strategy. Each robot's
// list must be valid for trajectory.NewStar on m rays.
func NewFixedRounds(name string, m int, robots [][]trajectory.Round) (*FixedRounds, error) {
	if len(robots) == 0 {
		return nil, fmt.Errorf("%w: no robots", ErrBadParams)
	}
	for r, rounds := range robots {
		if _, err := trajectory.NewStar(m, rounds); err != nil {
			return nil, fmt.Errorf("strategy: robot %d: %w", r, err)
		}
	}
	cp := make([][]trajectory.Round, len(robots))
	for i, rounds := range robots {
		cp[i] = append([]trajectory.Round(nil), rounds...)
	}
	// The fingerprint hashes the full round content — every ray index
	// and the exact bit pattern of every turning point — and nothing
	// else. The display name is deliberately excluded: two FixedRounds
	// with the same name but different rounds must never share a cache
	// key, and identical content under different names legitimately may.
	h := sha256.New()
	fmt.Fprintf(h, "fixed-rounds/v1|m=%d|k=%d", m, len(cp))
	for _, rounds := range cp {
		h.Write([]byte{'|'})
		for _, rd := range rounds {
			fmt.Fprintf(h, "%d;%s,", rd.Ray, strconv.FormatFloat(rd.Turn, 'x', -1, 64))
		}
	}
	fp := "fr|" + hex.EncodeToString(h.Sum(nil))
	return &FixedRounds{name: name, m: m, robots: cp, fp: fp}, nil
}

// Name implements Strategy.
func (s *FixedRounds) Name() string { return s.name }

// Fingerprint implements Fingerprinter: a content hash over the
// explicit round lists, independent of the caller-chosen name.
func (s *FixedRounds) Fingerprint() string { return s.fp }

// M implements Strategy.
func (s *FixedRounds) M() int { return s.m }

// K implements Strategy.
func (s *FixedRounds) K() int { return len(s.robots) }

// Rounds implements Strategy. The horizon is ignored: the caller supplied
// a finite list, and truncation is the caller's responsibility.
func (s *FixedRounds) Rounds(r int, _ float64) ([]trajectory.Round, error) {
	if r < 0 || r >= len(s.robots) {
		return nil, fmt.Errorf("%w: robot %d of %d", ErrBadParams, r, len(s.robots))
	}
	return append([]trajectory.Round(nil), s.robots[r]...), nil
}

// RaySplit is the naive fault-free baseline: the rays are partitioned among
// the robots round-robin, and each robot runs a single-robot exponential
// search over its private set of rays, ignoring the others. Its competitive
// ratio is 1 + 2*M^M/(M-1)^(M-1) for M = ceil(m/k) private rays (when the
// split is even), strictly worse than the cooperative optimum whenever the
// cyclic strategy can interleave (k does not divide m*... the comparison is
// the point of the E8 baseline column).
type RaySplit struct {
	m, k int
}

// NewRaySplit returns the ray-partition baseline for m rays and k robots,
// f = 0. Requires 1 <= k < m (with k >= m the problem is trivial).
func NewRaySplit(m, k int) (*RaySplit, error) {
	if m < 2 || k < 1 || k >= m {
		return nil, fmt.Errorf("%w: RaySplit requires 2 <= m and 1 <= k < m, got m=%d k=%d", ErrBadParams, m, k)
	}
	return &RaySplit{m: m, k: k}, nil
}

// Name implements Strategy.
func (s *RaySplit) Name() string { return fmt.Sprintf("ray-split(m=%d,k=%d)", s.m, s.k) }

// Fingerprint implements Fingerprinter. RaySplit's rounds are a pure
// function of (m, k), so the content hash is over that descriptor.
func (s *RaySplit) Fingerprint() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("ray-split/v1|m=%d|k=%d", s.m, s.k)))
	return "rs|" + hex.EncodeToString(sum[:])
}

// M implements Strategy.
func (s *RaySplit) M() int { return s.m }

// K implements Strategy.
func (s *RaySplit) K() int { return s.k }

// privateRays returns the rays assigned to robot r (round-robin).
func (s *RaySplit) privateRays(r int) []int {
	var rays []int
	for ray := r + 1; ray <= s.m; ray += s.k {
		rays = append(rays, ray)
	}
	return rays
}

// Rounds implements Strategy: robot r cycles its private rays with the
// single-searcher optimal base beta* = M/(M-1) per visit (M private rays),
// i.e. the k = 1, f = 0 cyclic exponential restricted to its own star.
func (s *RaySplit) Rounds(r int, horizon float64) ([]trajectory.Round, error) {
	if r < 0 || r >= s.k {
		return nil, fmt.Errorf("%w: robot %d of %d", ErrBadParams, r, s.k)
	}
	if !(horizon > 0) || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return nil, fmt.Errorf("%w: horizon %g", ErrBadParams, horizon)
	}
	rays := s.privateRays(r)
	mm := len(rays)
	if mm == 1 {
		// A single private ray needs one pass; go straight out.
		return []trajectory.Round{{Ray: rays[0], Turn: horizon * 2}}, nil
	}
	beta := float64(mm) / float64(mm-1)
	var (
		logB     = math.Log(beta)
		stopExpo = math.Log(horizon)/logB + float64(mm+1)
		rounds   []trajectory.Round
	)
	for l := 1 - 2*mm; ; l++ {
		e := float64(l)
		if e > stopExpo {
			break
		}
		if len(rounds) >= maxRounds {
			return nil, fmt.Errorf("%w: %d rounds at horizon %g", ErrTooManyRounds, maxRounds, horizon)
		}
		idx := ((l-1)%mm + mm) % mm
		rounds = append(rounds, trajectory.Round{
			Ray:  rays[idx],
			Turn: math.Pow(beta, e),
		})
	}
	return rounds, nil
}

var (
	_ Strategy = (*CyclicExponential)(nil)
	_ Strategy = (*FixedRounds)(nil)
	_ Strategy = (*RaySplit)(nil)
	// program.Instance satisfies Strategy structurally (the program
	// package cannot import this one); pin it here so a drift breaks
	// the build, not a downstream caller.
	_ Strategy = (*program.Instance)(nil)

	_ Fingerprinter = (*CyclicExponential)(nil)
	_ Fingerprinter = (*FixedRounds)(nil)
	_ Fingerprinter = (*RaySplit)(nil)
	_ Fingerprinter = (*program.Instance)(nil)
)
