package cover

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/numeric"
	"repro/internal/strategy"
)

func TestMu(t *testing.T) {
	got, err := Mu(9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("Mu(9) = %g, want 4", got)
	}
	if _, err := Mu(1); !errors.Is(err, ErrBadLambda) {
		t.Error("Mu(1) should fail")
	}
	if _, err := Mu(math.NaN()); !errors.Is(err, ErrBadLambda) {
		t.Error("Mu(NaN) should fail")
	}
}

func TestSymmetricCovIntervalsDoublingAtNine(t *testing.T) {
	// The cow-path doubling at lambda = 9 (mu = 4) covers (0, inf) in
	// contiguous single-multiplicity intervals [t_{i-1}, t_i]: the paper's
	// tightness at rho = 2.
	turns := []float64{1, 2, 4, 8, 16, 32}
	ivs, err := SymmetricCovIntervals(0, turns, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != len(turns) {
		t.Fatalf("got %d intervals, want %d (all fruitful)", len(ivs), len(turns))
	}
	// First interval: t''_1 = S_1/4 = 0.25.
	if !numeric.EqualWithin(ivs[0].Lo, 0.25, 1e-12) || ivs[0].Hi != 1 {
		t.Errorf("interval 1 = [%g, %g], want [0.25, 1]", ivs[0].Lo, ivs[0].Hi)
	}
	// Subsequent: t''_i = t_{i-1} exactly (the prefix-sum bound equals the
	// previous turn at the critical ratio... S_i/4 vs t_{i-1}).
	for i := 1; i < len(ivs); i++ {
		if !numeric.EqualWithin(ivs[i].Lo, turns[i-1], 1e-12) {
			t.Errorf("interval %d Lo = %g, want %g", i+1, ivs[i].Lo, turns[i-1])
		}
		if ivs[i].Hi != turns[i] {
			t.Errorf("interval %d Hi = %g, want %g", i+1, ivs[i].Hi, turns[i])
		}
	}
}

func TestSymmetricCovIntervalsNotFruitfulBelowNine(t *testing.T) {
	// Below lambda = 9 the doubling strategy develops gaps: some interval
	// must shrink past its turning point or leave uncovered space.
	turns := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	ivs, err := SymmetricCovIntervals(0, turns, 8.2)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Multiplicity(ivs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if gap, found := prof.FirstBelow(1); !found {
		t.Error("doubling at lambda = 8.2 should have a coverage gap")
	} else if gap <= 1 {
		t.Errorf("gap location %g should be beyond 1", gap)
	}
}

func TestSymmetricCovIntervalsValidation(t *testing.T) {
	if _, err := SymmetricCovIntervals(0, []float64{1, -1}, 9); !errors.Is(err, ErrBadTurns) {
		t.Error("negative turn should fail")
	}
	if _, err := SymmetricCovIntervals(0, []float64{1}, 0.5); !errors.Is(err, ErrBadLambda) {
		t.Error("bad lambda should fail")
	}
}

func TestORCCovIntervalsClosedForm(t *testing.T) {
	// Round i covers [S_{i-1}/mu, t_i]. With mu = 4 and turns 1, 2, 4:
	// [0, 1], [0.25, 2], [0.75, 4].
	ivs, err := ORCCovIntervals(0, []float64{1, 2, 4}, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ lo, hi float64 }{{0, 1}, {0.25, 2}, {0.75, 4}}
	if len(ivs) != len(want) {
		t.Fatalf("got %d intervals, want %d", len(ivs), len(want))
	}
	for i, w := range want {
		if !numeric.EqualWithin(ivs[i].Lo, w.lo, 1e-12) || !numeric.EqualWithin(ivs[i].Hi, w.hi, 1e-12) {
			t.Errorf("interval %d = [%g, %g], want [%g, %g]", i+1, ivs[i].Lo, ivs[i].Hi, w.lo, w.hi)
		}
	}
}

func TestORCCovIntervalsDropsUnfruitful(t *testing.T) {
	// A tiny round late in the sequence cannot lambda-cover anything:
	// t''_i = S_{i-1}/mu > t_i.
	ivs, err := ORCCovIntervals(0, []float64{10, 20, 0.5, 40}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range ivs {
		if iv.Index == 3 {
			t.Error("round 3 (turn 0.5 after prefix 30, mu = 1) should be unfruitful")
		}
	}
	// Its turn still counts toward later prefize sums: round 4 has
	// PrefixBefore = 30.5.
	last := ivs[len(ivs)-1]
	if last.Index != 4 || !numeric.EqualWithin(last.PrefixBefore, 30.5, 1e-12) {
		t.Errorf("round 4 PrefixBefore = %g, want 30.5", last.PrefixBefore)
	}
}

func TestMultiplicityProfile(t *testing.T) {
	ivs := []Interval{
		{Robot: 0, Index: 1, Lo: 1, Hi: 4},
		{Robot: 1, Index: 1, Lo: 2, Hi: 6},
		{Robot: 2, Index: 1, Lo: 3, Hi: 5},
	}
	prof, err := Multiplicity(ivs, 6)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		x    float64
		want int
	}{
		{1.5, 1}, {2.5, 2}, {3.5, 3}, {4.5, 2}, {5.5, 1},
		{4, 3}, // right-closed: x = 4 still covered by [1,4]
	}
	for _, c := range checks {
		if got := prof.MultAt(c.x); got != c.want {
			t.Errorf("MultAt(%g) = %d, want %d", c.x, got, c.want)
		}
	}
	if prof.MinMult() != 1 {
		t.Errorf("MinMult = %d, want 1", prof.MinMult())
	}
	if gap, found := prof.FirstBelow(2); !found || gap != 1 {
		t.Errorf("FirstBelow(2) = %g, %v; want 1, true", gap, found)
	}
	if _, found := prof.FirstBelow(1); found {
		t.Error("profile is everywhere >= 1")
	}
}

func TestMultiplicityEmptyAndErrors(t *testing.T) {
	prof, err := Multiplicity(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if prof.MinMult() != 0 {
		t.Error("empty interval set has multiplicity 0")
	}
	if _, err := Multiplicity(nil, 1); !errors.Is(err, ErrBadTurns) {
		t.Error("upTo = 1 should fail")
	}
	if _, err := Multiplicity(nil, math.Inf(1)); !errors.Is(err, ErrBadTurns) {
		t.Error("infinite upTo should fail")
	}
}

func TestMultiplicityClipsOutOfRange(t *testing.T) {
	ivs := []Interval{
		{Lo: 0.1, Hi: 0.9}, // entirely below 1
		{Lo: 20, Hi: 30},   // entirely beyond upTo
		{Lo: 0.5, Hi: 10},  // spans the whole range
	}
	prof, err := Multiplicity(ivs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Segments) != 1 || prof.Segments[0].Mult != 1 {
		t.Errorf("profile = %+v, want single segment of multiplicity 1", prof.Segments)
	}
}

// lineCoverIntervals extracts symmetric-setting intervals for every robot
// of a cyclic exponential strategy.
func lineCoverIntervals(t *testing.T, s *strategy.CyclicExponential, lambda, horizon float64) []Interval {
	t.Helper()
	var all []Interval
	for r := 0; r < s.K(); r++ {
		turns, err := s.LineTurns(r, horizon)
		if err != nil {
			t.Fatal(err)
		}
		ivs, err := SymmetricCovIntervals(r, turns, lambda)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ivs...)
	}
	return all
}

func TestOptimalStrategyAchievesSFoldCover(t *testing.T) {
	// Theorem 1 direction "upper bound": the optimal strategy's robots
	// s-fold ±-cover R>=1 at lambda0 (up to float slack).
	cases := []struct{ k, f int }{{1, 0}, {3, 1}, {5, 2}, {3, 2}}
	for _, c := range cases {
		s, err := strategy.NewCyclicExponential(2, c.k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		lambda0, err := bounds.AKF(c.k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		sFold := bounds.SlackS(c.k, c.f)
		all := lineCoverIntervals(t, s, lambda0*(1+1e-6), 2000)
		prof, err := Multiplicity(all, 500)
		if err != nil {
			t.Fatal(err)
		}
		if got := prof.MinMult(); got < sFold {
			gap, _ := prof.FirstBelow(sFold)
			t.Errorf("k=%d f=%d: min multiplicity %d < s = %d (first gap at %g)",
				c.k, c.f, got, sFold, gap)
		}
	}
}

func TestOptimalStrategyFailsBelowBound(t *testing.T) {
	// Below lambda0 even the optimal strategy cannot s-fold cover: the
	// intervals shrink and gaps open (this is the easy direction; the
	// potential engine proves NO strategy can).
	c := struct{ k, f int }{3, 1}
	s, err := strategy.NewCyclicExponential(2, c.k, c.f)
	if err != nil {
		t.Fatal(err)
	}
	lambda0, err := bounds.AKF(c.k, c.f)
	if err != nil {
		t.Fatal(err)
	}
	all := lineCoverIntervals(t, s, lambda0*0.97, 2000)
	prof, err := Multiplicity(all, 500)
	if err != nil {
		t.Fatal(err)
	}
	if prof.MinMult() >= bounds.SlackS(c.k, c.f) {
		t.Error("coverage below lambda0 should develop a gap for the s-fold requirement")
	}
}

func TestExactAssignmentDoubling(t *testing.T) {
	turns := []float64{1, 2, 4, 8, 16, 32, 64}
	ivs, err := SymmetricCovIntervals(0, turns, 9.05)
	if err != nil {
		t.Fatal(err)
	}
	assigned, err := ExactAssignment(ivs, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssignment(assigned, 1, 50); err != nil {
		t.Fatal(err)
	}
	// Assignment must be ordered by TPrime and start at 1.
	if assigned[0].TPrime != 1 {
		t.Errorf("first assigned TPrime = %g, want 1", assigned[0].TPrime)
	}
	for i := 1; i < len(assigned); i++ {
		if assigned[i].TPrime < assigned[i-1].TPrime {
			t.Error("assignment not ordered by TPrime")
		}
	}
}

func TestExactAssignmentGapDetection(t *testing.T) {
	ivs := []Interval{
		{Robot: 0, Index: 1, Lo: 1, Hi: 3},
		{Robot: 0, Index: 2, Lo: 5, Hi: 9}, // hole in (3, 5]
	}
	_, err := ExactAssignment(ivs, 1, 9)
	if !errors.Is(err, ErrCoverageGap) {
		t.Errorf("expected ErrCoverageGap, got %v", err)
	}
}

func TestExactAssignmentValidation(t *testing.T) {
	if _, err := ExactAssignment(nil, 0, 10); !errors.Is(err, ErrBadTurns) {
		t.Error("q = 0 should fail")
	}
	if _, err := ExactAssignment(nil, 1, 0.5); !errors.Is(err, ErrBadTurns) {
		t.Error("upTo <= 1 should fail")
	}
}

func TestExactAssignmentMultiRobotORC(t *testing.T) {
	// The m-ray optimal strategy, labels dropped, must q-fold cover in
	// the ORC setting at lambda0 and admit an exact-q assignment.
	cases := []struct{ m, k, f int }{{3, 2, 0}, {2, 3, 1}, {4, 3, 0}}
	for _, c := range cases {
		s, err := strategy.NewCyclicExponential(c.m, c.k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		q := c.m * (c.f + 1)
		lambda0, err := bounds.AMKF(c.m, c.k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		var all []Interval
		for r := 0; r < c.k; r++ {
			rounds, err := s.Rounds(r, 800)
			if err != nil {
				t.Fatal(err)
			}
			turns := make([]float64, len(rounds))
			for i, rd := range rounds {
				turns[i] = rd.Turn
			}
			ivs, err := ORCCovIntervals(r, turns, lambda0*(1+1e-6))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, ivs...)
		}
		prof, err := Multiplicity(all, 200)
		if err != nil {
			t.Fatal(err)
		}
		if prof.MinMult() < q {
			gap, _ := prof.FirstBelow(q)
			t.Fatalf("m=%d k=%d f=%d: ORC multiplicity %d < q=%d (gap at %g)",
				c.m, c.k, c.f, prof.MinMult(), q, gap)
		}
		assigned, err := ExactAssignment(all, q, 200)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAssignment(assigned, q, 200); err != nil {
			t.Errorf("m=%d k=%d f=%d: %v", c.m, c.k, c.f, err)
		}
		// Every robot participates.
		per := PerRobot(assigned, c.k)
		for r, list := range per {
			if len(list) == 0 {
				t.Errorf("m=%d k=%d f=%d: robot %d has no assigned intervals", c.m, c.k, c.f, r)
			}
		}
	}
}

func TestPerRobotIgnoresOutOfRange(t *testing.T) {
	assigned := []Assigned{{Robot: 0}, {Robot: 5}, {Robot: 1}}
	per := PerRobot(assigned, 2)
	if len(per[0]) != 1 || len(per[1]) != 1 {
		t.Error("PerRobot grouping wrong")
	}
}

func TestVerifyAssignmentCatchesViolations(t *testing.T) {
	// TPrime before Lo.
	bad := []Assigned{{Robot: 0, Index: 1, TPrime: 1, Turn: 5, Lo: 2}}
	if err := VerifyAssignment(bad, 1, 5); err == nil {
		t.Error("TPrime < Lo must be rejected")
	}
	// Non-monotone per-robot TPrime.
	bad2 := []Assigned{
		{Robot: 0, Index: 2, TPrime: 3, Turn: 6, Lo: 1},
		{Robot: 0, Index: 1, TPrime: 1, Turn: 4, Lo: 1},
	}
	if err := VerifyAssignment(bad2, 1, 4); err == nil {
		t.Error("decreasing TPrime must be rejected")
	}
	// Over-coverage (multiplicity 2 where q = 1).
	bad3 := []Assigned{
		{Robot: 0, Index: 1, TPrime: 1, Turn: 5, Lo: 1},
		{Robot: 1, Index: 1, TPrime: 1, Turn: 5, Lo: 1},
	}
	if err := VerifyAssignment(bad3, 1, 5); !errors.Is(err, ErrCoverageGap) {
		t.Error("over-coverage must be rejected for exactness")
	}
}

func TestQuickExactAssignmentOnRandomCovers(t *testing.T) {
	// Property: whenever random intervals q-fold cover (1, N], the sweep
	// finds an exact assignment that verifies; robots' intervals are
	// generated in increasing order to mimic real excursion sequences.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const upTo = 20.0
		q := 1 + rng.Intn(3)
		k := q + rng.Intn(3)
		var all []Interval
		for r := 0; r < k; r++ {
			// Chain of overlapping intervals from below 1 to beyond upTo.
			lo := rng.Float64() * 0.5
			idx := 1
			for lo < upTo {
				hi := lo + 0.5 + rng.Float64()*6
				all = append(all, Interval{Robot: r, Index: idx, Lo: lo, Hi: hi})
				idx++
				// Overlap the next interval with this one.
				lo = lo + (hi-lo)*(0.3+0.6*rng.Float64())
			}
		}
		prof, err := Multiplicity(all, upTo)
		if err != nil {
			return false
		}
		if prof.MinMult() < q {
			return true // not a q-fold cover; nothing to assign
		}
		assigned, err := ExactAssignment(all, q, upTo)
		if err != nil {
			// EDF with the retire-earlier rule can fail on adversarial
			// overlap patterns even when a fractional cover exists; that
			// is permitted, but must be reported as a coverage gap.
			return errors.Is(err, ErrCoverageGap)
		}
		return VerifyAssignment(assigned, q, upTo) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
