// Package cover implements the covering machinery at the core of the lower
// bound proofs in Kupavskii–Welzl (PODC 2018).
//
// Two covering settings appear in the paper:
//
//   - The symmetric line-cover setting (Theorem 3): a robot zigzagging on
//     the line ±-covers the point x >= 1 when it has visited both +x and -x
//     within time lambda*x. A robot can cover a point at most once. For a
//     standard-form turning sequence (t1, t2, ...) the robot lambda-covers
//     exactly the union of intervals [t”_i, t_i] with
//     t”_i = max((t1+...+t_i)/mu, t_{i-1}) and mu = (lambda-1)/2 (Eq. 3).
//
//   - The ORC setting (Section 3): a robot on a single ray covers x in
//     round i (out to t_i and back to 0) when x <= t_i and
//     2(t1+...+t_{i-1}) + x <= lambda*x, i.e. x >= t”_i with
//     t”_i = (t1+...+t_{i-1})/mu. Re-covering counts because the robot
//     returns to 0 between rounds.
//
// On top of interval extraction the package provides the multiplicity sweep
// (is every point of (1, N] covered at least q times?) and the exact-q
// assignment of the proofs: truncating the covering intervals [t”_i, t_i]
// to half-open assigned intervals (t'_i, t_i] so that every point of (1, N]
// is covered exactly q times, with each robot's t' sequence monotone — the
// combinatorial object the potential-function engines consume.
package cover

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
)

// Errors returned by the covering machinery.
var (
	// ErrBadLambda is returned when lambda <= 1 (mu would be <= 0).
	ErrBadLambda = errors.New("cover: lambda must exceed 1")
	// ErrBadTurns is returned for invalid turning sequences.
	ErrBadTurns = errors.New("cover: invalid turning sequence")
	// ErrCoverageGap is returned when a claimed q-fold cover has a point
	// covered fewer than q times.
	ErrCoverageGap = errors.New("cover: coverage gap")
)

// Interval is one covering interval contributed by a robot's excursion: the
// set of points the excursion lambda-covers, as the closed-left interval
// [Lo, Hi] before assignment (assignment later truncates the left end and
// interprets the result half-open).
type Interval struct {
	// Robot identifies the contributing robot (0-based).
	Robot int
	// Index is the excursion's 1-based position in the robot's sequence.
	Index int
	// Lo is t''_i, the earliest lambda-covered point of the excursion.
	Lo float64
	// Hi is t_i, the turning point.
	Hi float64
	// PrefixBefore is t1 + ... + t_{i-1} over the robot's kept turning
	// points, recorded for the potential engines' load bookkeeping.
	PrefixBefore float64
}

// Mu converts a competitive ratio lambda > 1 into mu = (lambda-1)/2.
func Mu(lambda float64) (float64, error) {
	if !(lambda > 1) || math.IsNaN(lambda) {
		return 0, fmt.Errorf("%w: lambda = %g", ErrBadLambda, lambda)
	}
	return (lambda - 1) / 2, nil
}

func validateTurns(turns []float64) error {
	for i, t := range turns {
		if !(t > 0) || math.IsInf(t, 0) {
			return fmt.Errorf("%w: turn %d is %g (want positive finite)", ErrBadTurns, i+1, t)
		}
	}
	return nil
}

// SymmetricCovIntervals returns the lambda-covering intervals of a single
// robot in the symmetric line-cover setting, per Eq. (3): fruitful
// excursions i contribute [max((t1+...+t_i)/mu, t_{i-1}), t_i]; excursions
// with t”_i > t_i cover nothing and contribute no interval (but still
// count toward the prefix sums — the caller's strategy is taken as given,
// not optimized).
func SymmetricCovIntervals(robot int, turns []float64, lambda float64) ([]Interval, error) {
	mu, err := Mu(lambda)
	if err != nil {
		return nil, err
	}
	if err := validateTurns(turns); err != nil {
		return nil, err
	}
	var (
		out    []Interval
		prefix numeric.Kahan
	)
	for i, t := range turns {
		before := prefix.Value()
		prefix.Add(t)
		lo := prefix.Value() / mu
		if i > 0 && turns[i-1] > lo {
			lo = turns[i-1]
		}
		if lo > t {
			continue // not fruitful
		}
		out = append(out, Interval{
			Robot:        robot,
			Index:        i + 1,
			Lo:           lo,
			Hi:           t,
			PrefixBefore: before,
		})
	}
	return out, nil
}

// ORCCovIntervals returns the lambda-covering intervals of a single robot
// in the ORC setting: round i contributes [(t1+...+t_{i-1})/mu, t_i] when
// fruitful. Ray labels are already discarded (the ORC problem is the
// relaxation that forgets them), so the input is just the sequence of
// excursion distances.
func ORCCovIntervals(robot int, turns []float64, lambda float64) ([]Interval, error) {
	mu, err := Mu(lambda)
	if err != nil {
		return nil, err
	}
	if err := validateTurns(turns); err != nil {
		return nil, err
	}
	var (
		out    []Interval
		prefix numeric.Kahan
	)
	for i, t := range turns {
		before := prefix.Value()
		lo := before / mu
		prefix.Add(t)
		if lo > t {
			continue // not fruitful
		}
		out = append(out, Interval{
			Robot:        robot,
			Index:        i + 1,
			Lo:           lo,
			Hi:           t,
			PrefixBefore: before,
		})
	}
	return out, nil
}

// Segment is a maximal half-open interval (Lo, Hi] on which the covering
// multiplicity is constant.
type Segment struct {
	Lo, Hi float64
	Mult   int
}

// Profile is the covering-multiplicity step function over (1, UpTo].
type Profile struct {
	// Segments partition (1, UpTo] in increasing order.
	Segments []Segment
	// UpTo is the right end of the analyzed range.
	UpTo float64
}

// Multiplicity sweeps the intervals and returns the multiplicity profile of
// (1, upTo]. Intervals are interpreted as covering (max(Lo,1), Hi].
func Multiplicity(intervals []Interval, upTo float64) (Profile, error) {
	if !(upTo > 1) || math.IsInf(upTo, 0) || math.IsNaN(upTo) {
		return Profile{}, fmt.Errorf("%w: upTo = %g (want finite > 1)", ErrBadTurns, upTo)
	}
	// Event map: +1 at effective lo, -1 at hi (both "take effect after the
	// coordinate", matching half-open (lo, hi] coverage).
	type event struct {
		at    float64
		delta int
	}
	var events []event
	for _, iv := range intervals {
		lo := math.Max(iv.Lo, 1)
		hi := math.Min(iv.Hi, upTo)
		if iv.Hi <= 1 || lo >= upTo || hi <= lo {
			continue // no overlap with (1, upTo]
		}
		events = append(events, event{at: lo, delta: 1})
		if hi < upTo {
			events = append(events, event{at: hi, delta: -1})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })

	var (
		segs  []Segment
		count int
		cur   = 1.0
		idx   = 0
	)
	for idx < len(events) {
		at := events[idx].at
		if at > cur {
			segs = append(segs, Segment{Lo: cur, Hi: at, Mult: count})
			cur = at
		}
		for idx < len(events) && events[idx].at == at {
			count += events[idx].delta
			idx++
		}
	}
	if cur < upTo {
		segs = append(segs, Segment{Lo: cur, Hi: upTo, Mult: count})
	}
	return Profile{Segments: segs, UpTo: upTo}, nil
}

// MinMult returns the minimum multiplicity over the profile's range (0 for
// an empty profile).
func (p Profile) MinMult() int {
	if len(p.Segments) == 0 {
		return 0
	}
	min := p.Segments[0].Mult
	for _, s := range p.Segments[1:] {
		if s.Mult < min {
			min = s.Mult
		}
	}
	return min
}

// FirstBelow returns the left end of the first segment with multiplicity
// below q, and whether such a segment exists.
func (p Profile) FirstBelow(q int) (float64, bool) {
	for _, s := range p.Segments {
		if s.Mult < q {
			return s.Lo, true
		}
	}
	return 0, false
}

// MultAt returns the covering multiplicity at point x in (1, UpTo].
func (p Profile) MultAt(x float64) int {
	for _, s := range p.Segments {
		if s.Lo < x && x <= s.Hi {
			return s.Mult
		}
	}
	return 0
}
