package cover

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Assigned is a truncated covering interval (TPrime, Turn] produced by the
// exact-q assignment: robot Robot's excursion Index is responsible for
// covering exactly (TPrime, Turn], and every point of (1, upTo] lies in
// exactly q assigned intervals. TPrime >= the excursion's t” (Eq. 4), so
// the paper's inequality t_i <= mu*t'_i - (t1+...+t_{i-1}) (Eq. 5) holds.
type Assigned struct {
	Robot, Index int
	// TPrime is the assigned left endpoint (exclusive), the activation
	// position of the sweep.
	TPrime float64
	// Turn is the right endpoint (inclusive), the excursion's turning
	// point t_i.
	Turn float64
	// Lo is the original t''_i, kept for validation.
	Lo float64
	// PrefixBefore is the robot's turning-point prefix sum before this
	// excursion, from the originating Interval.
	PrefixBefore float64
}

// intervalHeap is a min-heap of intervals keyed by Hi (earliest deadline
// first).
type intervalHeap []Interval

func (h intervalHeap) Len() int            { return len(h) }
func (h intervalHeap) Less(i, j int) bool  { return h[i].Hi < h[j].Hi }
func (h intervalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intervalHeap) Push(x interface{}) { *h = append(*h, x.(Interval)) }
func (h *intervalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	iv := old[n-1]
	*h = old[:n-1]
	return iv
}

// floatHeap is a min-heap of float64 (used for active interval deadlines).
type floatHeap []float64

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// ExactAssignment truncates the covering intervals into assigned intervals
// so that every point of (1, upTo] is covered exactly q times, as in the
// proofs of Theorems 3 and 6. The sweep activates intervals lazily
// (earliest deadline first) whenever the active multiplicity drops below q;
// activating a later excursion of a robot retires that robot's earlier
// unactivated excursions, which keeps each robot's t' sequence monotone
// (the paper's "skipping turning points").
//
// It returns ErrCoverageGap (wrapped, with the gap location) if the
// intervals do not actually q-fold cover (1, upTo].
func ExactAssignment(intervals []Interval, q int, upTo float64) ([]Assigned, error) {
	if q < 1 {
		return nil, fmt.Errorf("%w: q = %d", ErrBadTurns, q)
	}
	if !(upTo > 1) || math.IsInf(upTo, 0) || math.IsNaN(upTo) {
		return nil, fmt.Errorf("%w: upTo = %g (want finite > 1)", ErrBadTurns, upTo)
	}

	// Clip to the analyzed range and sort by effective left endpoint.
	pending := make([]Interval, 0, len(intervals))
	for _, iv := range intervals {
		if iv.Hi <= 1 {
			continue
		}
		eff := iv
		if eff.Lo < 1 {
			eff.Lo = 1
		}
		if eff.Lo >= upTo {
			continue
		}
		pending = append(pending, eff)
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].Lo != pending[j].Lo {
			return pending[i].Lo < pending[j].Lo
		}
		return pending[i].Hi < pending[j].Hi
	})

	// Event coordinates: interval endpoints within [1, upTo], plus the
	// range ends. Deficiencies can only arise at event coordinates.
	coordSet := map[float64]struct{}{1: {}, upTo: {}}
	for _, iv := range pending {
		coordSet[iv.Lo] = struct{}{}
		if iv.Hi < upTo {
			coordSet[iv.Hi] = struct{}{}
		}
	}
	coords := make([]float64, 0, len(coordSet))
	for c := range coordSet {
		coords = append(coords, c)
	}
	sort.Float64s(coords)

	var (
		avail    intervalHeap
		active   floatHeap
		floor    = make(map[int]int) // robot -> lowest still-activatable index
		assigned []Assigned
		nextPend = 0
	)
	for _, c := range coords {
		if c >= upTo {
			break
		}
		// Retire active intervals that end at or before c.
		for active.Len() > 0 && active[0] <= c {
			heap.Pop(&active)
		}
		// Admit intervals that have become available.
		for nextPend < len(pending) && pending[nextPend].Lo <= c {
			heap.Push(&avail, pending[nextPend])
			nextPend++
		}
		// Top up to exactly q active intervals.
		for active.Len() < q {
			var chosen *Interval
			for avail.Len() > 0 {
				iv := heap.Pop(&avail).(Interval)
				if iv.Index < floor[iv.Robot] {
					continue // retired by a later activation of this robot
				}
				if iv.Hi <= c {
					continue // expired unused
				}
				chosen = &iv
				break
			}
			if chosen == nil {
				return nil, fmt.Errorf("%w: multiplicity %d < %d just beyond x = %.12g",
					ErrCoverageGap, active.Len(), q, c)
			}
			floor[chosen.Robot] = chosen.Index + 1
			heap.Push(&active, chosen.Hi)
			assigned = append(assigned, Assigned{
				Robot:        chosen.Robot,
				Index:        chosen.Index,
				TPrime:       c,
				Turn:         chosen.Hi,
				Lo:           chosen.Lo,
				PrefixBefore: chosen.PrefixBefore,
			})
		}
	}
	return assigned, nil
}

// VerifyAssignment checks the defining properties of an exact-q assignment
// over (1, upTo]: every point covered exactly q times, each robot's TPrime
// sequence nondecreasing, and every TPrime at or beyond the original t”.
func VerifyAssignment(assigned []Assigned, q int, upTo float64) error {
	ivs := make([]Interval, 0, len(assigned))
	lastTPrime := make(map[int]float64)
	for _, a := range assigned {
		if a.TPrime < a.Lo-1e-9 {
			return fmt.Errorf("cover: assigned interval robot %d index %d starts at %g before its t'' %g",
				a.Robot, a.Index, a.TPrime, a.Lo)
		}
		if prev, ok := lastTPrime[a.Robot]; ok && a.TPrime < prev-1e-12 {
			return fmt.Errorf("cover: robot %d t' sequence decreases: %g after %g", a.Robot, a.TPrime, prev)
		}
		lastTPrime[a.Robot] = a.TPrime
		ivs = append(ivs, Interval{Robot: a.Robot, Index: a.Index, Lo: a.TPrime, Hi: a.Turn})
	}
	prof, err := Multiplicity(ivs, upTo)
	if err != nil {
		return err
	}
	for _, s := range prof.Segments {
		if s.Mult != q {
			return fmt.Errorf("%w: multiplicity %d != %d on (%.12g, %.12g]",
				ErrCoverageGap, s.Mult, q, s.Lo, s.Hi)
		}
	}
	return nil
}

// PerRobot groups an assignment by robot, preserving order. The slice index
// is the robot id; robots with no assigned intervals get empty slices (the
// caller supplies the robot count).
func PerRobot(assigned []Assigned, k int) [][]Assigned {
	out := make([][]Assigned, k)
	for _, a := range assigned {
		if a.Robot >= 0 && a.Robot < k {
			out[a.Robot] = append(out[a.Robot], a)
		}
	}
	return out
}
